package core

// The retrain-churn attack: the scenario the background-retrain pipeline
// exists for. Where ServeAttack maximizes model loss, ChurnAttack's
// adversary maximizes retrain frequency × rebuild cost × stale-window
// loss — the complexity-attack objective of "Algorithmic Complexity
// Attacks on Dynamic Learned Indexes" (PAPERS.md), mounted against the
// sharded serving index behind index.Pipeline. See DESIGN.md §7.

import (
	"fmt"
	"math"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
)

// ChurnOptions parameterizes the retrain-churn scenario.
type ChurnOptions struct {
	// Epochs is the number of serving epochs (>= 1).
	Epochs int
	// OpsPerEpoch is the honest operation count per epoch, drawn from
	// Workload (>= 0). Every operation — honest or poison — advances the
	// logical clock by one tick.
	OpsPerEpoch int
	// EpochBudget is the attacker's poison-key budget per epoch (>= 0),
	// drip-fed evenly through the epoch's honest traffic.
	EpochBudget int
	// Shards is the victim's shard count (>= 1).
	Shards int
	// Policy is each shard's merge-and-retrain policy. BufferThreshold is
	// the churn attacker's natural prey — every K accepted keys into one
	// shard buys one rebuild of that whole shard — but all policies work;
	// with Manual the scenario force-retrains at every epoch end exactly
	// like the serve scenario.
	Policy dynamic.RetrainPolicy
	// Workload is the honest traffic mix.
	Workload workload.Spec
	// Domain is the write-key universe size; 0 defaults to twice the
	// initial key span.
	Domain int64
	// Seed drives the workload stream.
	Seed uint64
	// Cost prices each rebuild in logical ticks (index.CostModel). The
	// zero model degenerates the pipeline to the synchronous path: no
	// stale windows, no publish latency — the scenario still runs and its
	// stale columns read zero (TestChurnZeroCostDegenerates).
	Cost index.CostModel
	// Defense arms the defense plane (guard chain, robust fitter, rate
	// limiting) on victim and clean twin alike; the zero value changes
	// nothing (see DefenseSpec). Rate limiting is the churn-native defense:
	// the attacker needs SUSTAINED write pressure into one shard, which a
	// per-source budget prices directly.
	Defense DefenseSpec
}

func (o ChurnOptions) domain(initial keys.Set) int64 {
	if o.Domain > 0 {
		return o.Domain
	}
	return 2 * (initial.Max() + 1)
}

func (o ChurnOptions) validate() error {
	if o.Epochs < 1 {
		return fmt.Errorf("core: churn scenario needs Epochs >= 1, got %d", o.Epochs)
	}
	if o.OpsPerEpoch < 0 {
		return fmt.Errorf("core: negative ops per epoch %d", o.OpsPerEpoch)
	}
	if o.EpochBudget < 0 {
		return fmt.Errorf("core: negative per-epoch budget %d", o.EpochBudget)
	}
	if o.Shards < 1 {
		return fmt.Errorf("core: churn scenario needs Shards >= 1, got %d", o.Shards)
	}
	if err := o.Cost.Validate(); err != nil {
		return err
	}
	return o.Workload.Validate()
}

// ChurnEpochReport is the scenario state measured at the end of one epoch.
// Reads are served INLINE at their tick against the pipeline's published
// (possibly stale) read plane, so the probe and staleness columns reflect
// what the honest population actually experienced — not an end-of-epoch
// re-evaluation.
type ChurnEpochReport struct {
	Epoch int // 1-based
	// Reads/Writes count this epoch's honest operations; Injected is this
	// epoch's accepted poison; TargetShard is the shard the attacker chose
	// to churn this epoch.
	Reads, Writes int
	Injected      int
	TargetShard   int
	// PoisonTotal, Retrains, and CleanRetrains are cumulative.
	PoisonTotal   int
	Retrains      int // victim backend retrains, summed across shards
	CleanRetrains int
	// Stale-read accounting for THIS epoch's inline reads: a read is stale
	// when it was served while a rebuild was in flight.
	StaleReads      int
	CleanStaleReads int
	StaleFrac       float64
	CleanStaleFrac  float64
	// Victim pipeline accounting, cumulative: completed publishes,
	// coalesced triggers, stale ticks, summed rebuild cost, and
	// trigger→publish latency (mean/max) — latency above the raw rebuild
	// cost is queueing delay, the churn attacker's objective.
	Publishes          int
	Coalesced          int
	StaleTicks         int64
	RebuildTicks       int64
	MeanPublishLatency float64
	MaxPublishLatency  int64
	// Aggregate live model-vs-content loss (key-weighted across shards)
	// and the ratio against the clean counterfactual, as in ServeAttack.
	CleanLoss    float64
	PoisonedLoss float64
	RatioLoss    float64
	// Probe cost of this epoch's inline reads on both read planes: exact
	// totals, means per read, and the victim/clean ratio.
	CleanProbeTotal    int64
	PoisonedProbeTotal int64
	CleanProbes        float64
	PoisonedProbes     float64
	ProbeRatio         float64
}

// ChurnResult reports the full retrain-churn scenario.
type ChurnResult struct {
	Shards   int
	Epochs   []ChurnEpochReport
	Poison   keys.Set // union of all accepted poison keys
	Retrains int      // victim backend retrains at scenario end
	// VictimChurn / CleanChurn are the pipelines' final accounting.
	VictimChurn index.ChurnStats
	CleanChurn  index.ChurnStats
	// Defense is the defense-plane accounting (zero when no defense armed).
	Defense DefenseReport
}

// FinalRatio returns the last epoch's aggregate loss ratio.
func (r ChurnResult) FinalRatio() float64 {
	if len(r.Epochs) == 0 {
		return 1
	}
	return r.Epochs[len(r.Epochs)-1].RatioLoss
}

// MaxStaleFrac returns the worst per-epoch victim stale-read fraction —
// the headline staleness number.
func (r ChurnResult) MaxStaleFrac() float64 {
	best := 0.0
	for _, e := range r.Epochs {
		if e.StaleFrac > best {
			best = e.StaleFrac
		}
	}
	return best
}

// MaxProbeRatio returns the worst per-epoch victim/clean probe ratio.
func (r ChurnResult) MaxProbeRatio() float64 {
	best := 0.0
	for _, e := range r.Epochs {
		if e.ProbeRatio > best {
			best = e.ProbeRatio
		}
	}
	return best
}

// churnTarget scores each shard for the churn attacker: expected rebuild
// price × expected rebuilds the budget can buy there this epoch. The
// rebuild price is the cost model on the shard's current size; the trigger
// estimate depends on the policy — a BufferThreshold shard that is already
// B keys into its K-key budget needs only K−B more, an EveryK shard ticks
// on every insert, and a Manual victim rebuilds once per epoch regardless
// (so only the price differentiates shards). Ties break toward the lowest
// shard number; everything is pure integer/float arithmetic on observable
// state, so the choice is deterministic.
func churnTarget(v *shard.Index, policy dynamic.RetrainPolicy, budget int, cost index.CostModel) int {
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < v.NumShards(); i++ {
		s := v.Shard(i)
		price := float64(cost.Ticks(s.Len() + budget))
		var triggers float64
		switch policy.Kind {
		case dynamic.BufferThreshold:
			triggers = float64(s.BufferLen()+budget) / float64(policy.K)
		case dynamic.EveryK:
			triggers = float64(budget) / float64(policy.K)
		default: // Manual: one epoch-end rebuild either way
			triggers = 1
		}
		if score := price * triggers; score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// ChurnAttack mounts the retrain-churn scenario: an adversary with a
// per-epoch key budget drip-feeds poison into the ONE shard where each key
// buys the most rebuild work, while an honest population reads and writes
// the sharded index through the background-retrain pipeline. The clean
// counterfactual runs the identical pipeline, policy, and operation
// stream, so every stale or slow read the victim's population suffers
// beyond the counterfactual's is attacker-caused.
//
// Each epoch:
//
//  1. The attacker inspects the victim's live per-shard state, picks the
//     target shard maximizing rebuild-price × expected-triggers
//     (churnTarget), and computes its poison keys with Algorithm 1 against
//     THAT SHARD's visible content — poison stays interior to the shard's
//     range, so the frozen router delivers every key to the target.
//  2. The epoch's honest operations stream through both pipelines, one
//     tick each. Reads are served inline from the published read plane:
//     probes and staleness are recorded per read, for victim and clean
//     alike. The poison budget is drip-fed evenly through the honest
//     stream (one more key whenever the epoch's elapsed-op fraction
//     passes the injected fraction), each injection one tick.
//  3. With dynamic.Manual both pipelines are force-retrained at epoch end;
//     other policies trigger organically — including from the attacker's
//     own inserts, which under BufferThreshold is precisely the lever.
//  4. The epoch report captures stale-read fractions, publish latency,
//     coalescing, rebuild ticks, live loss ratios, and inline probe costs.
//
// Determinism contract: WithWorkers parallelism reaches only the per-epoch
// oracle's candidate scans and the epoch-end rebuild fan-out, both of
// which produce byte-identical results for any worker count
// (TestChurnWorkerEquivalence at scenario level, TestChurnSweepWorker
// Equivalence at sweep level, TestChurnWorkersFlagDeterminism at CLI
// level). WithCancellation aborts between epochs and inside the oracle.
func ChurnAttack(initial keys.Set, opts ChurnOptions, execOpts ...Option) (ChurnResult, error) {
	if err := opts.validate(); err != nil {
		return ChurnResult{}, err
	}
	vShard, err := shard.NewWithFit(initial, opts.Shards, opts.Policy, opts.Defense.fitFunc())
	if err != nil {
		return ChurnResult{}, err
	}
	cShard, err := shard.NewWithFit(initial, opts.Shards, opts.Policy, opts.Defense.fitFunc())
	if err != nil {
		return ChurnResult{}, err
	}
	gen, err := workload.NewGenerator(opts.Workload, initial, opts.domain(initial), opts.Seed)
	if err != nil {
		return ChurnResult{}, err
	}
	gen.SetSources(opts.Defense.Sources)
	vBack, vGuard := opts.Defense.wrap(vShard)
	cBack, cGuard := opts.Defense.wrap(cShard)
	ex := newExec(execOpts)
	victim := index.NewPipeline(vBack, opts.Cost).WithPool(ex.ctx, ex.pool)
	clean := index.NewPipeline(cBack, opts.Cost).WithPool(ex.ctx, ex.pool)
	opClock := 0
	tick := func(n int) {
		opClock += n
		victim.Tick(n)
		clean.Tick(n)
	}

	res := ChurnResult{Shards: opts.Shards, Epochs: make([]ChurnEpochReport, 0, opts.Epochs)}
	res.Defense.Enabled = opts.Defense.Enabled()
	vArm := opts.Defense.newArm(victim, vGuard, &res.Defense, false)
	cArm := opts.Defense.newArm(clean, cGuard, &res.Defense, true)
	atkSrc := opts.Defense.attackerSource()
	var allPoison []int64
	for e := 0; e < opts.Epochs; e++ {
		if err := ex.ctx.Err(); err != nil {
			return ChurnResult{}, err
		}
		rep := ChurnEpochReport{Epoch: e + 1}

		// 1. Plan the epoch's churn: target shard and poison keys.
		var poison []int64
		if opts.EpochBudget > 0 {
			rep.TargetShard = churnTarget(vShard, opts.Policy, opts.EpochBudget, opts.Cost)
			g, err := GreedyMultiPoint(vShard.Shard(rep.TargetShard).Keys(), opts.EpochBudget, execOpts...)
			if err != nil {
				return ChurnResult{}, fmt.Errorf("core: churn epoch %d oracle: %w", e+1, err)
			}
			poison = g.Poison
		}

		// 2. Serve the epoch: honest ops with the poison drip interleaved.
		inject := func() {
			tick(1)
			if ok, _ := vArm.insert(poison[0], atkSrc, opClock, true); ok {
				allPoison = append(allPoison, poison[0])
				rep.Injected++
			}
			poison = poison[1:]
		}
		for op := 0; op < opts.OpsPerEpoch; op++ {
			for len(poison) > 0 && rep.Injected*opts.OpsPerEpoch <= op*opts.EpochBudget {
				inject()
			}
			tick(1)
			o := gen.Next()
			if o.Read {
				rep.Reads++
				vr := victim.Lookup(o.Key)
				cr := clean.Lookup(o.Key)
				rep.PoisonedProbeTotal += int64(vr.Probes)
				rep.CleanProbeTotal += int64(cr.Probes)
				if victim.IsStale() {
					rep.StaleReads++
				}
				if clean.IsStale() {
					rep.CleanStaleReads++
				}
				continue
			}
			rep.Writes++
			cArm.insert(o.Key, o.Source, opClock, false)
			vArm.insert(o.Key, o.Source, opClock, false)
		}
		for len(poison) > 0 { // leftover drip (OpsPerEpoch == 0 or rounding)
			inject()
		}

		// 3. Maintenance.
		if opts.Policy.Kind == dynamic.Manual {
			victim.Retrain()
			clean.Retrain()
		}

		// 4. Measurement.
		rep.PoisonTotal = len(allPoison)
		vStats, cStats := victim.Stats(), clean.Stats()
		rep.Retrains = vStats.Retrains
		rep.CleanRetrains = cStats.Retrains
		rep.CleanLoss = cStats.ContentLoss
		rep.PoisonedLoss = vStats.ContentLoss
		rep.RatioLoss = SafeRatio(rep.PoisonedLoss, rep.CleanLoss)
		if rep.Reads > 0 {
			rep.StaleFrac = float64(rep.StaleReads) / float64(rep.Reads)
			rep.CleanStaleFrac = float64(rep.CleanStaleReads) / float64(rep.Reads)
			rep.CleanProbes = float64(rep.CleanProbeTotal) / float64(rep.Reads)
			rep.PoisonedProbes = float64(rep.PoisonedProbeTotal) / float64(rep.Reads)
			rep.ProbeRatio = SafeRatio(rep.PoisonedProbes, rep.CleanProbes)
		}
		churn := victim.ChurnStats()
		rep.Publishes = churn.Publishes
		rep.Coalesced = churn.Coalesced
		rep.StaleTicks = churn.StaleTicks
		rep.RebuildTicks = churn.RebuildTicks
		rep.MeanPublishLatency = churn.MeanLatency()
		rep.MaxPublishLatency = churn.MaxLatencyTicks
		res.Epochs = append(res.Epochs, rep)
	}
	res.Retrains = res.Epochs[len(res.Epochs)-1].Retrains
	res.VictimChurn = victim.ChurnStats()
	res.CleanChurn = clean.ChurnStats()
	ps, err := keys.NewStrict(allPoison)
	if err != nil {
		return ChurnResult{}, fmt.Errorf("core: churn poison keys collide: %w", err)
	}
	res.Poison = ps
	return res, nil
}
