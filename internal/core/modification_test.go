package core

import (
	"errors"
	"math"
	"testing"

	"cdfpoison/internal/regression"
	"cdfpoison/internal/xrand"
)

func TestGreedyModificationBasics(t *testing.T) {
	rng := xrand.New(60)
	ks := randomSet(rng, 100, 100, 1000)
	res, err := GreedyModification(ks, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Key count preserved by every remove+insert pair.
	if res.Modified.Len() != ks.Len() && !res.Stopped {
		t.Fatalf("key count drifted: %d -> %d", ks.Len(), res.Modified.Len())
	}
	if res.RatioLoss() < 1 {
		t.Fatalf("modification ratio %v < 1", res.RatioLoss())
	}
	// Final loss matches an independent refit.
	m, err := regression.FitCDF(res.Modified)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Loss-res.FinalLoss()) > 1e-8*(1+m.Loss) {
		t.Fatalf("final loss %v != refit %v", res.FinalLoss(), m.Loss)
	}
	// Each step's removed key was present, inserted key was absent.
	cur := ks
	for i, s := range res.Steps {
		if !cur.Contains(s.Removed) {
			t.Fatalf("step %d removed absent key %d", i, s.Removed)
		}
		next, ok := cur.Remove(s.Removed)
		if !ok {
			t.Fatalf("step %d removed absent key %d", i, s.Removed)
		}
		if s.Inserted >= 0 {
			var ok bool
			next, ok = next.Insert(s.Inserted)
			if !ok {
				t.Fatalf("step %d inserted occupied key %d", i, s.Inserted)
			}
		}
		cur = next
	}
	if !cur.Equal(res.Modified) {
		t.Fatal("step replay does not reproduce the modified set")
	}
}

func TestGreedyModificationTrajectoryNonDecreasing(t *testing.T) {
	rng := xrand.New(61)
	for trial := 0; trial < 20; trial++ {
		ks := randomSet(rng, 30, 80, 800)
		res, err := GreedyModification(ks, 8)
		if err != nil {
			t.Fatal(err)
		}
		prev := res.CleanLoss
		for i, s := range res.Steps {
			if s.Loss < prev-1e-12 {
				t.Fatalf("trajectory decreased at step %d: %v -> %v", i, prev, s.Loss)
			}
			prev = s.Loss
		}
	}
}

func TestGreedyModificationErrors(t *testing.T) {
	tiny := mustSet(t, []int64{1, 5})
	if _, err := GreedyModification(tiny, 2); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
	ks := mustSet(t, []int64{1, 5, 9})
	if _, err := GreedyModification(ks, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGreedyModificationBeatsNothing(t *testing.T) {
	// On uniform data with room to maneuver, modifications must achieve a
	// real amplification (they subsume pure insertions up to budget).
	rng := xrand.New(62)
	ks := randomSet(rng, 200, 200, 4000)
	res, err := GreedyModification(ks, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatioLoss() < 1.5 {
		t.Fatalf("modification attack too weak: %v", res.RatioLoss())
	}
}
