package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/workload"
)

func churnOpts() ChurnOptions {
	return ChurnOptions{
		Epochs:      3,
		OpsPerEpoch: 80,
		EpochBudget: 24,
		Shards:      4,
		Policy:      dynamic.BufferLimit(12),
		Workload:    workload.NewZipf(1.1, 85),
		Seed:        7,
		Cost:        index.CostModel{Fixed: 30},
	}
}

func TestChurnValidation(t *testing.T) {
	initial := serveFixture(t, 120)
	base := churnOpts()
	for name, mutate := range map[string]func(*ChurnOptions){
		"no-epochs":       func(o *ChurnOptions) { o.Epochs = 0 },
		"negative-ops":    func(o *ChurnOptions) { o.OpsPerEpoch = -1 },
		"negative-budget": func(o *ChurnOptions) { o.EpochBudget = -1 },
		"no-shards":       func(o *ChurnOptions) { o.Shards = 0 },
		"bad-workload":    func(o *ChurnOptions) { o.Workload = workload.NewZipf(-1, 90) },
		"bad-policy":      func(o *ChurnOptions) { o.Policy = dynamic.EveryKInserts(0) },
		"bad-cost":        func(o *ChurnOptions) { o.Cost = index.CostModel{Fixed: -3} },
	} {
		opts := base
		mutate(&opts)
		if _, err := ChurnAttack(initial, opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

// TestChurnTrajectory: the scenario's basic shape under the buffer policy —
// the attacker's drip trips per-shard rebuilds, reads go stale, publish
// latency exceeds the raw rebuild cost once triggers coalesce, and the
// victim's population suffers measurably beyond the clean counterfactual.
func TestChurnTrajectory(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := churnOpts()
	res, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || len(res.Epochs) != opts.Epochs {
		t.Fatalf("shape: %d shards, %d epochs", res.Shards, len(res.Epochs))
	}
	for i, e := range res.Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("epoch %d numbered %d", i, e.Epoch)
		}
		if e.Reads+e.Writes != opts.OpsPerEpoch {
			t.Fatalf("epoch %d: %d reads + %d writes != %d ops", e.Epoch, e.Reads, e.Writes, opts.OpsPerEpoch)
		}
		if e.Injected < 1 || e.Injected > opts.EpochBudget {
			t.Fatalf("epoch %d: injected %d (budget %d)", e.Epoch, e.Injected, opts.EpochBudget)
		}
		if e.TargetShard < 0 || e.TargetShard >= opts.Shards {
			t.Fatalf("epoch %d: target shard %d", e.Epoch, e.TargetShard)
		}
		if e.StaleFrac < 0 || e.StaleFrac > 1 || e.CleanStaleFrac < 0 || e.CleanStaleFrac > 1 {
			t.Fatalf("epoch %d: stale fractions out of range: %v / %v", e.Epoch, e.StaleFrac, e.CleanStaleFrac)
		}
		if e.Reads > 0 && (e.CleanProbes <= 0 || e.PoisonedProbes <= 0) {
			t.Fatalf("epoch %d: probe means missing", e.Epoch)
		}
	}
	last := res.Epochs[len(res.Epochs)-1]
	// The attacker's whole point: rebuilds happen, reads go stale, and the
	// stale exposure exceeds what honest traffic alone causes.
	if last.Retrains == 0 {
		t.Fatal("no victim retrain was ever triggered")
	}
	if res.MaxStaleFrac() == 0 {
		t.Fatal("no victim read was ever served stale")
	}
	if res.VictimChurn.StaleTicks <= res.CleanChurn.StaleTicks {
		t.Fatalf("victim stale ticks %d not above clean %d",
			res.VictimChurn.StaleTicks, res.CleanChurn.StaleTicks)
	}
	if res.VictimChurn.Publishes == 0 {
		t.Fatal("no rebuild ever published")
	}
	if last.RebuildTicks == 0 {
		t.Fatal("no rebuild cost accrued")
	}
	if res.Poison.Len() != last.PoisonTotal {
		t.Fatalf("poison set %d != cumulative total %d", res.Poison.Len(), last.PoisonTotal)
	}
}

// TestChurnCoalescingLatency: with a rebuild cost far above the trigger
// spacing, the attacker saturates the rebuild worker — triggers coalesce
// and the max publish latency exceeds the raw per-rebuild cost.
func TestChurnCoalescingLatency(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := churnOpts()
	opts.Cost = index.CostModel{Fixed: 60}
	opts.Policy = dynamic.BufferLimit(8)
	res, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimChurn.Coalesced == 0 {
		t.Fatalf("no coalescing under saturation: %+v", res.VictimChurn)
	}
	if res.VictimChurn.MaxLatencyTicks <= 60 {
		t.Fatalf("max publish latency %d never exceeded the raw rebuild cost",
			res.VictimChurn.MaxLatencyTicks)
	}
}

// TestChurnZeroCostDegenerates: with the zero cost model the pipeline is
// synchronous — no stale read, no latency, no stale ticks — and the
// scenario reduces to poison-vs-clean loss exactly like the serve family.
func TestChurnZeroCostDegenerates(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := churnOpts()
	opts.Cost = index.CostModel{}
	res, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxStaleFrac() != 0 {
		t.Fatalf("stale reads under zero cost: %v", res.MaxStaleFrac())
	}
	if res.VictimChurn.StaleTicks != 0 || res.VictimChurn.MaxLatencyTicks != 0 {
		t.Fatalf("stale accounting under zero cost: %+v", res.VictimChurn)
	}
	if res.VictimChurn.Triggers != res.VictimChurn.Publishes {
		t.Fatalf("unpublished triggers under zero cost: %+v", res.VictimChurn)
	}
}

// TestChurnTargetsCostliestShard: with one shard much larger than the
// rest and a size-proportional cost model, the attacker must aim there —
// that is where each trigger buys the most rebuild work.
func TestChurnTargetsCostliestShard(t *testing.T) {
	initial := serveFixture(t, 600)
	opts := churnOpts()
	opts.Shards = 3
	opts.Cost = index.CostModel{PerKey: 5, Unit: 10}
	opts.EpochBudget = 30
	// Pre-skew: bulk up shard 0's range so its rebuilds dominate the price.
	res, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The quantile router gives near-equal shards, so the score is driven
	// by buffer fill + size; whichever shard is chosen first, the attack
	// keeps feeding a target until its rebuild price stops dominating —
	// assert the choice is stable and the targeted shard actually retrains.
	first := res.Epochs[0].TargetShard
	if res.Epochs[0].Retrains == 0 {
		t.Fatalf("target shard %d never retrained despite %d poison keys",
			first, res.Epochs[0].Injected)
	}
}

// TestChurnWorkerEquivalence: scenario-level byte-identity across worker
// counts — workers reach only the oracle scans and the rebuild fan-out.
func TestChurnWorkerEquivalence(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := churnOpts()
	seq, err := ChurnAttack(initial, opts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		par, err := ChurnAttack(initial, opts, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverges from sequential", w)
		}
	}
}

func TestChurnCancellation(t *testing.T) {
	initial := serveFixture(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ChurnAttack(initial, churnOpts(), WithContext(ctx)); err == nil {
		t.Fatal("cancelled churn attack returned nil error")
	}
}
