package core

// Defense-aware scenario plumbing: every attack scenario in this package
// accepts a DefenseSpec whose ZERO VALUE is "no defense" — the scenario then
// takes exactly the historical code path, which the zero-strength golden
// tests pin byte-for-byte. A non-zero spec arms some combination of
//
//   - a detector chain (internal/defense.Policy) wrapping the victim's — and
//     the clean twin's — write plane in a defense.Guard,
//   - a robust CDF fitter (internal/robust) replacing OLS in the learned
//     backends' retrains,
//   - a per-source write rate limiter (defense.RateLimiter) driven by the
//     scenario's logical op clock and the workload's round-robin source
//     attribution (workload.Op.Source), and
//   - the gapped-array backend's density-balancing split policy
//     (alex.NewBalanced), for the cascade scenario.
//
// The clean counterfactual runs the SAME defense over its pure-honest
// stream, so the defense's false-positive cost — honest writes flagged or
// throttled — is measured directly on the twin, while the victim-side
// accounting splits rejects by origin (the scenario knows which inserts are
// poison). bench.DefenseSweep turns these numbers into the Pareto frontier
// of attack-damage reduction vs honest-traffic overhead (DESIGN.md §10).

import (
	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/robust"
)

// DefenseSpec configures the defense plane of a scenario. The zero value
// disables everything; each field arms one mechanism independently.
type DefenseSpec struct {
	// Policies is the detector chain screening victim (and clean-twin)
	// inserts; nil or empty mounts no Guard. Build with defense
	// constructors or defense.ParsePolicyChain.
	Policies []defense.Policy
	// Fitter replaces the OLS CDF fit in learned-backend retrains (dynamic,
	// shard, single-model RMI); nil keeps regression.FitCDF. Ignored by
	// backends without a pluggable fit (B-Tree, alex). A custom
	// OnlineOptions.Backend factory must compose its own fitter — the spec
	// reaches only the scenarios' default constructions.
	Fitter robust.Fitter
	// RateBudget/RateWindow arm per-source write rate limiting: each source
	// may land at most RateBudget accepted-or-rejected write ATTEMPTS per
	// RateWindow logical ops. Both must be >= 1 to arm; the scenario drives
	// the limiter off its own op clock, so verdicts are deterministic.
	RateBudget int
	RateWindow int
	// Sources spreads honest traffic round-robin across that many logical
	// clients (workload.SetSources); the attacker always writes from its own
	// dedicated source id (== Sources). With Sources <= 1 every honest op
	// shares source 0 and the attacker uses source 1 — rate limits then
	// squeeze honest traffic and the attacker about equally, which is the
	// honest-overhead worst case the sweep wants visible.
	Sources int
	// BalancedSplit selects the gapped-array backend's density-balancing
	// split policy (alex.NewBalanced) in the cascade scenario; ignored
	// elsewhere.
	BalancedSplit bool
}

// Enabled reports whether any defense mechanism is armed.
func (d DefenseSpec) Enabled() bool {
	return len(d.Policies) > 0 || d.Fitter != nil || d.rateLimited() || d.BalancedSplit
}

func (d DefenseSpec) rateLimited() bool { return d.RateBudget >= 1 && d.RateWindow >= 1 }

// fitFunc adapts the spec's fitter to the learned backends' pluggable-fit
// hook; nil when no fitter is armed (the backends then use OLS).
func (d DefenseSpec) fitFunc() dynamic.FitFunc {
	if d.Fitter == nil {
		return nil
	}
	return d.Fitter.Fit
}

// attackerSource is the dedicated source id the scenario attributes poison
// writes to: one past the honest round-robin range.
func (d DefenseSpec) attackerSource() int {
	if d.Sources > 1 {
		return d.Sources
	}
	return 1
}

// DefenseReport is a scenario's defense-plane accounting, split by origin.
// Victim-side rejects are attributed by the scenario (it knows which inserts
// are poison); the Clean* columns count the clean twin's pure-honest stream
// through the identical defense — the direct false-positive reading.
// All counts are write ATTEMPTS, before duplicate rejection by the backend.
type DefenseReport struct {
	// Enabled mirrors DefenseSpec.Enabled for the CSV emitters.
	Enabled bool
	// Victim-side write attempts by origin.
	HonestAttempts, PoisonAttempts int
	// Victim-side guard rejects by origin.
	FlaggedHonest, FlaggedPoison int
	// Victim-side rate-limiter refusals by origin.
	ThrottledHonest, ThrottledPoison int
	// Clean-twin accounting: attempts, guard rejects, limiter refusals —
	// all honest by construction.
	CleanAttempts, CleanFlagged, CleanThrottled int
}

// PoisonBlockedFrac returns the fraction of the attacker's write attempts
// the defense stopped (flagged or throttled).
func (r DefenseReport) PoisonBlockedFrac() float64 {
	if r.PoisonAttempts == 0 {
		return 0
	}
	return float64(r.FlaggedPoison+r.ThrottledPoison) / float64(r.PoisonAttempts)
}

// HonestBlockedFrac returns the fraction of the clean twin's honest write
// attempts the defense stopped — the sweep's honest-overhead reading.
func (r DefenseReport) HonestBlockedFrac() float64 {
	if r.CleanAttempts == 0 {
		return 0
	}
	return float64(r.CleanFlagged+r.CleanThrottled) / float64(r.CleanAttempts)
}

// defenseArm is one index's armed write path: limiter → guard → backend,
// with per-origin accounting into the shared report. The zero spec yields a
// passthrough arm whose insert is exactly sink.Insert — the structural
// identity the zero-strength golden tests rely on.
type defenseArm struct {
	limiter *defense.RateLimiter
	guard   *defense.Guard // nil when no policy chain is armed
	sink    index.Writer   // where inserts land (pipeline, guard, or backend)
	rep     *DefenseReport
	clean   bool
}

// newArm arms one side's write path. guard may be nil; sink must be the
// outermost writer (e.g. the retrain pipeline wrapping the guard).
func (d DefenseSpec) newArm(sink index.Writer, guard *defense.Guard, rep *DefenseReport, clean bool) *defenseArm {
	a := &defenseArm{guard: guard, sink: sink, rep: rep, clean: clean}
	if d.rateLimited() {
		rl, err := defense.NewRateLimiter(d.RateBudget, d.RateWindow)
		if err != nil { // unreachable: rateLimited() validated both params
			panic(err)
		}
		a.limiter = rl
	}
	return a
}

// insert screens one write attempt: the limiter first (a throttled write
// never reaches the guard or the backend), then the guard via the sink. op
// is the scenario's logical clock; poison attributes the attempt.
func (a *defenseArm) insert(k int64, source, op int, poison bool) (accepted, retrained bool) {
	a.account(poison, 0)
	if a.limiter != nil && !a.limiter.Allow(source, op) {
		a.account(poison, 2)
		return false, false
	}
	before := 0
	if a.guard != nil {
		before = a.guard.Flagged()
	}
	accepted, retrained = a.sink.Insert(k)
	if a.guard != nil && a.guard.Flagged() > before {
		a.account(poison, 1)
	}
	return accepted, retrained
}

// account records one attempt (kind 0), flag (1), or throttle (2).
func (a *defenseArm) account(poison bool, kind int) {
	if a.clean {
		switch kind {
		case 0:
			a.rep.CleanAttempts++
		case 1:
			a.rep.CleanFlagged++
		case 2:
			a.rep.CleanThrottled++
		}
		return
	}
	switch {
	case kind == 0 && poison:
		a.rep.PoisonAttempts++
	case kind == 0:
		a.rep.HonestAttempts++
	case kind == 1 && poison:
		a.rep.FlaggedPoison++
	case kind == 1:
		a.rep.FlaggedHonest++
	case kind == 2 && poison:
		a.rep.ThrottledPoison++
	default:
		a.rep.ThrottledHonest++
	}
}

// wrap mounts the spec's guard (when armed) around a backend, returning the
// possibly-wrapped backend plus the guard handle for flag attribution. With
// no policy chain the backend passes through untouched — same value, same
// dynamic type — so the undefended construction is structurally identical.
func (d DefenseSpec) wrap(b index.Backend) (index.Backend, *defense.Guard) {
	if len(d.Policies) == 0 {
		return b, nil
	}
	g := defense.NewGuard(b, defense.GuardOptions{Policies: d.Policies})
	return g, g
}
