package core

import (
	"context"

	"cdfpoison/internal/engine"
)

// Option configures how an attack entry point executes — parallelism and
// cancellation — without touching what it computes. The zero configuration
// (no options) runs sequentially on the calling goroutine, byte-identical
// to the historical single-threaded implementation.
//
// Determinism contract: for ANY worker count the attack output is identical
// to the sequential run. Parallel paths reduce per-chunk results in task
// index order (see internal/engine), so worker scheduling can never leak
// into results. The equivalence tests in parallel_test.go enforce this.
type Option func(*exec)

type exec struct {
	ctx        context.Context
	pool       *engine.Pool
	fullScan   bool
	perKeyEval bool
}

// WithWorkers bounds the attack's worker pool: n == 1 is sequential, n > 1
// uses exactly n workers, and n <= 0 means "one worker per core"
// (runtime.GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(e *exec) { e.pool = engine.New(n) }
}

// WithFullScan disables the pruned endpoint scan (DESIGN.md §11) and forces
// the exhaustive per-gap endpoint sweep. The chosen key and every loss are
// bit-identical either way — this switch exists for the scan ablation, for
// differential tests, and for callers that want the classic 2(n−1)-candidate
// accounting semantics (e.g. the endpoint-vs-brute ablation).
func WithFullScan() Option {
	return func(e *exec) { e.fullScan = true }
}

// WithPerKeyEval disables the sorted-batch probe kernel (DESIGN.md §12) on
// the scenario evaluation paths and forces the classic per-key ProbeSum
// loop. The probe totals and every derived column are bit-identical either
// way — this switch exists for the batch-kernel ablation, for differential
// tests, and for the CLI's -no-batch-eval flag.
func WithPerKeyEval() Option {
	return func(e *exec) { e.perKeyEval = true }
}

// WithContext makes the attack cancellable: when ctx is cancelled the
// attack aborts between candidate evaluations and returns ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(e *exec) {
		if ctx != nil {
			e.ctx = ctx
		}
	}
}

func newExec(opts []Option) exec {
	e := exec{ctx: context.Background(), pool: engine.New(1)}
	for _, o := range opts {
		o(&e)
	}
	return e
}
