package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/regression"
	"cdfpoison/internal/xrand"
)

// removeKey returns ks without k (test helper, O(n)).
func removeKey(t *testing.T, ks keys.Set, k int64) keys.Set {
	t.Helper()
	out := make([]int64, 0, ks.Len()-1)
	for _, v := range ks.Keys() {
		if v != k {
			out = append(out, v)
		}
	}
	s, err := keys.NewStrict(out)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptimalSingleRemovalMatchesBruteForce(t *testing.T) {
	rng := xrand.New(50)
	for trial := 0; trial < 200; trial++ {
		ks := randomSet(rng, 3, 40, 300)
		res, err := OptimalSingleRemoval(ks)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: refit after every possible removal.
		bestLoss, bestKey := -1.0, int64(-1)
		for _, k := range ks.Keys() {
			m, err := regression.FitCDF(removeKey(t, ks, k))
			if err != nil {
				t.Fatal(err)
			}
			if m.Loss > bestLoss {
				bestLoss, bestKey = m.Loss, k
			}
		}
		if math.Abs(res.PoisonedLoss-bestLoss) > 1e-8*(1+bestLoss) {
			t.Fatalf("removal loss %v (key %d) != brute %v (key %d) on %v",
				res.PoisonedLoss, res.Key, bestLoss, bestKey, ks)
		}
		if res.Candidates != ks.Len() {
			t.Fatalf("candidates %d != n %d", res.Candidates, ks.Len())
		}
	}
}

func TestOptimalSingleRemovalQuick(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		ks := randomSet(rng, 3, 25, 150)
		res, err := OptimalSingleRemoval(ks)
		if err != nil {
			return false
		}
		// Reported loss must match a real refit of the survivor set.
		out := make([]int64, 0, ks.Len()-1)
		for _, v := range ks.Keys() {
			if v != res.Key {
				out = append(out, v)
			}
		}
		survivors, err := keys.NewStrict(out)
		if err != nil {
			return false
		}
		m, err := regression.FitCDF(survivors)
		if err != nil {
			return false
		}
		return math.Abs(res.PoisonedLoss-m.Loss) <= 1e-8*(1+m.Loss)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalErrors(t *testing.T) {
	tiny := mustSet(t, []int64{1, 5})
	if _, err := OptimalSingleRemoval(tiny); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
	if _, err := GreedyRemoval(tiny, 1); !errors.Is(err, ErrTooFew) {
		t.Fatalf("greedy: want ErrTooFew, got %v", err)
	}
	if _, err := GreedyRemoval(mustSet(t, []int64{1, 5, 9}), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGreedyRemovalBasics(t *testing.T) {
	rng := xrand.New(51)
	ks := randomSet(rng, 60, 60, 600)
	g, err := GreedyRemoval(ks, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Removed)+g.Remaining.Len() != ks.Len() {
		t.Fatalf("keys lost: %d removed + %d remaining != %d", len(g.Removed), g.Remaining.Len(), ks.Len())
	}
	for _, k := range g.Removed {
		if g.Remaining.Contains(k) {
			t.Fatalf("removed key %d still present", k)
		}
		if !ks.Contains(k) {
			t.Fatalf("removed key %d never existed", k)
		}
	}
	if g.RatioLoss() < 1 {
		t.Fatalf("removal attack ratio %v < 1", g.RatioLoss())
	}
	// Final loss matches a refit.
	m, err := regression.FitCDF(g.Remaining)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Loss-g.FinalLoss()) > 1e-8*(1+m.Loss) {
		t.Fatalf("final loss %v != refit %v", g.FinalLoss(), m.Loss)
	}
}

func TestGreedyRemovalTrajectoryNonDecreasing(t *testing.T) {
	rng := xrand.New(52)
	for trial := 0; trial < 30; trial++ {
		ks := randomSet(rng, 20, 60, 500)
		g, err := GreedyRemoval(ks, 8)
		if err != nil {
			t.Fatal(err)
		}
		prev := g.CleanLoss
		for i, l := range g.Trajectory {
			if l < prev {
				t.Fatalf("trajectory decreased at %d: %v -> %v", i, prev, l)
			}
			prev = l
		}
	}
}

func TestGreedyRemovalStopsOnPerfectLine(t *testing.T) {
	// Evenly spaced keys: every removal introduces error, so removals are
	// always "profitable"… except the attack must still behave sensibly on
	// the degenerate perfectly-linear input where clean loss is 0.
	ks := mustSet(t, []int64{0, 10, 20, 30, 40, 50})
	g, err := GreedyRemoval(ks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.CleanLoss > 1e-12 {
		t.Fatalf("clean loss %v", g.CleanLoss)
	}
	// Removing an interior key from an even grid bends the CDF: loss grows.
	if len(g.Removed) == 0 {
		t.Fatal("no key removed from even grid")
	}
	if g.FinalLoss() <= 0 {
		t.Fatalf("final loss %v", g.FinalLoss())
	}
}
