package core

import (
	"math"
	"sync"
	"testing"

	"cdfpoison/internal/keys"
	"cdfpoison/internal/xrand"
)

func uniformSet(t *testing.T, rng *xrand.RNG, n int, domain int64) keys.Set {
	t.Helper()
	s, err := keys.New(xrand.SampleInt64s(rng, n, domain))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRMIAttackInvariants(t *testing.T) {
	rng := xrand.New(20)
	ks := uniformSet(t, rng, 2000, 20000)
	opts := RMIAttackOptions{NumModels: 20, Percent: 10, Alpha: 3}
	res, err := RMIAttack(ks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != 200 {
		t.Fatalf("budget %d, want 200", res.Budget)
	}
	if len(res.Models) != 20 {
		t.Fatalf("models %d", len(res.Models))
	}

	// Budget conservation and per-model threshold.
	totalBudget, totalInjected, totalLegit := 0, 0, 0
	for _, m := range res.Models {
		totalBudget += m.Budget
		totalInjected += m.Injected
		totalLegit += m.LegitKeys
		if res.Threshold > 0 && m.Budget > res.Threshold {
			t.Fatalf("model %d budget %d exceeds threshold %d", m.Index, m.Budget, res.Threshold)
		}
		if m.Injected > m.Budget {
			t.Fatalf("model %d injected %d > budget %d", m.Index, m.Injected, m.Budget)
		}
		if len(m.Poison) != m.Injected {
			t.Fatalf("model %d poison slice %d != injected %d", m.Index, len(m.Poison), m.Injected)
		}
	}
	if totalBudget != res.Budget {
		t.Fatalf("budgets sum to %d, want %d", totalBudget, res.Budget)
	}
	if totalInjected != res.Injected {
		t.Fatalf("injected mismatch: %d vs %d", totalInjected, res.Injected)
	}
	if totalLegit != ks.Len() {
		t.Fatalf("legit keys lost: %d vs %d", totalLegit, ks.Len())
	}

	// Poison keys are globally unique, absent from K, and the union set
	// matches the per-model slices.
	if res.Poison.Len() != res.Injected {
		t.Fatalf("poison union %d != injected %d", res.Poison.Len(), res.Injected)
	}
	for _, p := range res.Poison.Keys() {
		if ks.Contains(p) {
			t.Fatalf("poison key %d collides with legit key", p)
		}
	}

	// Threshold formula: t = ceil(alpha * total / N).
	want := int(math.Ceil(3 * 200.0 / 20.0))
	if res.Threshold != want {
		t.Fatalf("threshold %d, want %d", res.Threshold, want)
	}

	// The attack must hurt: poisoned RMI loss above clean.
	if res.RMIRatio() <= 1 {
		t.Fatalf("RMI ratio %v <= 1", res.RMIRatio())
	}
}

func TestRMIAttackPoisonStaysInsideModelRange(t *testing.T) {
	rng := xrand.New(21)
	ks := uniformSet(t, rng, 600, 6000)
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 6, Percent: 10, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct each model's legit key range from the report sizes: the
	// models partition the sorted keys contiguously.
	lo := 0
	for _, m := range res.Models {
		hi := lo + m.LegitKeys
		if m.Injected > 0 {
			minK, maxK := ks.At(lo), ks.At(hi-1)
			for _, p := range m.Poison {
				if p <= minK || p >= maxK {
					t.Fatalf("model %d poison %d outside its key range (%d,%d)", m.Index, p, minK, maxK)
				}
			}
		}
		lo = hi
	}
}

func TestRMIAttackExchangesBeatUniform(t *testing.T) {
	// Greedy exchanges (Algorithm 2) must never end below the uniform
	// volume-allocation baseline it starts from — each applied move strictly
	// increases the summed loss.
	rng := xrand.New(22)
	// Log-normal-ish concentration: square a uniform sample to skew density.
	raw := make([]int64, 0, 1500)
	seen := map[int64]bool{}
	for len(raw) < 1500 {
		v := rng.LogNormFloat64(0, 2)
		k := int64(v * 1000)
		if k < 0 || k > 1_000_000 || seen[k] {
			continue
		}
		seen[k] = true
		raw = append(raw, k)
	}
	ks, err := keys.New(raw)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RMIAttack(ks, RMIAttackOptions{NumModels: 15, Percent: 10, Alpha: 3, DisableExchanges: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RMIAttack(ks, RMIAttackOptions{NumModels: 15, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if base.Moves != 0 {
		t.Fatalf("baseline performed %d moves", base.Moves)
	}
	if full.PoisonedRMILoss < base.PoisonedRMILoss*(1-1e-9) {
		t.Fatalf("exchanges hurt: %v < %v", full.PoisonedRMILoss, base.PoisonedRMILoss)
	}
}

func TestRMIAttackAlphaCapsSkew(t *testing.T) {
	rng := xrand.New(23)
	ks := uniformSet(t, rng, 1000, 10000)
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 10, Percent: 10, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	// t = ceil(2*100/10) = 20.
	for _, m := range res.Models {
		if m.Budget > 20 {
			t.Fatalf("model %d budget %d exceeds cap 20", m.Index, m.Budget)
		}
	}
}

func TestRMIAttackSingleModelEqualsGreedy(t *testing.T) {
	rng := xrand.New(24)
	ks := uniformSet(t, rng, 200, 2000)
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 1, Percent: 10, Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	g, err := GreedyMultiPoint(ks, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PoisonedRMILoss-g.FinalLoss()) > 1e-9*(1+g.FinalLoss()) {
		t.Fatalf("single-model RMI attack %v != greedy %v", res.PoisonedRMILoss, g.FinalLoss())
	}
	if math.Abs(res.CleanRMILoss-g.CleanLoss) > 1e-9*(1+g.CleanLoss) {
		t.Fatalf("clean loss mismatch: %v vs %v", res.CleanRMILoss, g.CleanLoss)
	}
}

func TestRMIAttackValidation(t *testing.T) {
	rng := xrand.New(25)
	ks := uniformSet(t, rng, 50, 500)
	bad := []RMIAttackOptions{
		{NumModels: 0, Percent: 10},
		{NumModels: 51, Percent: 10},
		{NumModels: 5, Percent: 0},
		{NumModels: 5, Percent: -3},
		{NumModels: 5, Percent: 101},
	}
	for _, o := range bad {
		if _, err := RMIAttack(ks, o); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	// Budget rounding to zero must error.
	if _, err := RMIAttack(ks, RMIAttackOptions{NumModels: 5, Percent: 0.1}); err == nil {
		t.Error("sub-key budget accepted")
	}
}

func TestRMIAttackSaturatedPartitions(t *testing.T) {
	// Keys 0..99 are fully saturated: no model can be poisoned. The attack
	// must succeed with zero injections rather than fail.
	raw := make([]int64, 100)
	for i := range raw {
		raw[i] = int64(i)
	}
	ks, err := keys.New(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 5, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 {
		t.Fatalf("injected %d into a saturated domain", res.Injected)
	}
	if res.RMIRatio() != 1 {
		t.Fatalf("ratio %v on saturated domain, want 1", res.RMIRatio())
	}
}

func TestRMIAttackTinyModels(t *testing.T) {
	// NumModels == n/2: each model holds ~2 keys; the attack must not panic
	// and must preserve budget accounting.
	rng := xrand.New(26)
	ks := uniformSet(t, rng, 40, 4000)
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 20, Percent: 20, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.Models {
		total += m.Budget
	}
	if total != res.Budget {
		t.Fatalf("budget leak: %d vs %d", total, res.Budget)
	}
}

func TestRMIAttackDeterministic(t *testing.T) {
	rng := xrand.New(27)
	ks := uniformSet(t, rng, 500, 5000)
	a, err := RMIAttack(ks, RMIAttackOptions{NumModels: 10, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMIAttack(ks, RMIAttackOptions{NumModels: 10, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Poison.Equal(b.Poison) || a.Moves != b.Moves || a.PoisonedRMILoss != b.PoisonedRMILoss {
		t.Fatal("RMI attack is not deterministic")
	}
}

func TestRMIAttackPerModelReportsConsistent(t *testing.T) {
	rng := xrand.New(28)
	ks := uniformSet(t, rng, 800, 8000)
	res, err := RMIAttack(ks, RMIAttackOptions{NumModels: 8, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratios := res.PerModelRatios()
	if len(ratios) == 0 {
		t.Fatal("no finite per-model ratios")
	}
	for _, m := range res.Models {
		if m.PoisonedLoss < m.CleanLoss-1e-9 && m.Injected > 0 {
			// A model the attack touched should not get better; tolerate
			// exact equality for untouched ones.
			t.Fatalf("model %d improved under poisoning: %v -> %v", m.Index, m.CleanLoss, m.PoisonedLoss)
		}
	}
	// Mean of per-model poisoned losses equals the reported RMI loss.
	sum := 0.0
	for _, m := range res.Models {
		sum += m.PoisonedLoss
	}
	if math.Abs(sum/float64(len(res.Models))-res.PoisonedRMILoss) > 1e-9*(1+res.PoisonedRMILoss) {
		t.Fatal("PoisonedRMILoss is not the mean of per-model losses")
	}
}

// TestRangeMemoBasics: get/put round-trips, distinct triples stay distinct,
// and the shard spread is non-degenerate for the adjacent (lo, hi) ranges
// the exchange loop produces.
func TestRangeMemoBasics(t *testing.T) {
	rm := newRangeMemo(16)
	if _, ok := rm.get(memoKey{1, 2, 3}); ok {
		t.Fatal("empty memo claimed a hit")
	}
	rm.put(memoKey{1, 2, 3}, memoVal{loss: 1.5, injected: 3})
	rm.put(memoKey{1, 2, 4}, memoVal{loss: 2.5, injected: 4})
	if v, ok := rm.get(memoKey{1, 2, 3}); !ok || v.loss != 1.5 || v.injected != 3 {
		t.Fatalf("get = (%+v, %v)", v, ok)
	}
	if v, ok := rm.get(memoKey{1, 2, 4}); !ok || v.loss != 2.5 {
		t.Fatalf("neighbour triple = (%+v, %v)", v, ok)
	}
	// Adjacent ranges (the exchange loop's access pattern) must spread over
	// many shards, or the sharding buys nothing.
	used := map[uint64]bool{}
	for lo := 0; lo < 64; lo++ {
		used[memoKey{lo, lo + 100, 5}.shard()] = true
	}
	if len(used) < memoShardCount/4 {
		t.Fatalf("64 adjacent ranges hit only %d shards", len(used))
	}
}

// BenchmarkRangeMemoContention measures the satellite fix directly: hot
// memo hits from parallel workers on the sharded memo vs a single-mutex
// map (the pre-PR design, reconstructed inline).
func BenchmarkRangeMemoContention(b *testing.B) {
	keysList := make([]memoKey, 256)
	for i := range keysList {
		keysList[i] = memoKey{lo: i * 100, hi: i*100 + 500, budget: i % 8}
	}
	b.Run("sharded", func(b *testing.B) {
		rm := newRangeMemo(len(keysList))
		for _, k := range keysList {
			rm.put(k, memoVal{loss: float64(k.lo)})
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keysList[i&255]
				if _, ok := rm.get(k); !ok {
					b.Error("miss")
					return
				}
				i++
			}
		})
	})
	b.Run("single-mutex", func(b *testing.B) {
		var mu sync.Mutex
		m := make(map[memoKey]memoVal, len(keysList))
		for _, k := range keysList {
			m[k] = memoVal{loss: float64(k.lo)}
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keysList[i&255]
				mu.Lock()
				_, ok := m[k]
				mu.Unlock()
				if !ok {
					b.Error("miss")
					return
				}
				i++
			}
		})
	})
}
