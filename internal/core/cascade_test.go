package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"cdfpoison/internal/workload"
)

func cascadeOpts() CascadeOptions {
	return CascadeOptions{
		Epochs:      4,
		OpsPerEpoch: 120,
		EpochBudget: 30,
		LeafTarget:  16,
		Workload:    workload.NewZipf(1.1, 80),
		Seed:        7,
	}
}

func TestCascadeValidation(t *testing.T) {
	initial := serveFixture(t, 200)
	base := cascadeOpts()
	for name, mutate := range map[string]func(*CascadeOptions){
		"no-epochs":        func(o *CascadeOptions) { o.Epochs = 0 },
		"negative-ops":     func(o *CascadeOptions) { o.OpsPerEpoch = -1 },
		"negative-budget":  func(o *CascadeOptions) { o.EpochBudget = -1 },
		"negative-target":  func(o *CascadeOptions) { o.LeafTarget = -1 },
		"one-slot-target":  func(o *CascadeOptions) { o.LeafTarget = 1 },
		"bad-workload":     func(o *CascadeOptions) { o.Workload = workload.NewZipf(-1, 90) },
		"bad-workload-mix": func(o *CascadeOptions) { o.Workload = workload.NewUniform(101) },
	} {
		opts := base
		mutate(&opts)
		if _, err := CascadeAttack(initial, opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

// TestCascadeTrajectory: the scenario's basic shape — the attacker's drip
// lands in the densest leaf, structural cost accrues beyond the clean
// counterfactual, splits fire, and the damage accounting is self-consistent.
func TestCascadeTrajectory(t *testing.T) {
	initial := serveFixture(t, 500)
	opts := cascadeOpts()
	res, err := CascadeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != opts.Epochs {
		t.Fatalf("shape: %d epochs", len(res.Epochs))
	}
	for i, e := range res.Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("epoch %d numbered %d", i, e.Epoch)
		}
		if e.Reads+e.Writes != opts.OpsPerEpoch {
			t.Fatalf("epoch %d: %d reads + %d writes != %d ops", e.Epoch, e.Reads, e.Writes, opts.OpsPerEpoch)
		}
		if e.Injected < 0 || e.Injected > opts.EpochBudget {
			t.Fatalf("epoch %d: injected %d (budget %d)", e.Epoch, e.Injected, opts.EpochBudget)
		}
		if e.TargetNode < 0 || e.TargetNode >= e.Nodes {
			t.Fatalf("epoch %d: target node %d of %d", e.Epoch, e.TargetNode, e.Nodes)
		}
		if e.TargetDensity <= 0 || e.TargetDensity > 1 {
			t.Fatalf("epoch %d: target density %v", e.Epoch, e.TargetDensity)
		}
		if e.StructCost < e.ShiftWrites {
			t.Fatalf("epoch %d: struct cost %d below shift writes %d", e.Epoch, e.StructCost, e.ShiftWrites)
		}
		if e.Reads > 0 && (e.CleanProbes <= 0 || e.PoisonedProbes <= 0) {
			t.Fatalf("epoch %d: probe means missing", e.Epoch)
		}
	}
	last := res.Epochs[len(res.Epochs)-1]
	// The attacker's whole point: structural maintenance beyond what honest
	// traffic alone causes.
	if last.PoisonTotal == 0 {
		t.Fatal("no poison ever accepted")
	}
	if res.Poison.Len() != last.PoisonTotal {
		t.Fatalf("poison set %d != cumulative total %d", res.Poison.Len(), last.PoisonTotal)
	}
	if last.Splits == 0 {
		t.Fatal("no victim split was ever forced")
	}
	if res.VictimStruct.Cost() <= res.CleanStruct.Cost() {
		t.Fatalf("victim structural cost %d not above clean %d",
			res.VictimStruct.Cost(), res.CleanStruct.Cost())
	}
	if res.FinalStructRatio() <= 1 {
		t.Fatalf("final struct ratio %v not above 1", res.FinalStructRatio())
	}
	if res.TotalDamage() <= 0 {
		t.Fatal("no structural damage accrued")
	}
}

// TestCascadeSuperLinearDamage: the headline super-linearity — the victim's
// structural-cost ratio over the clean counterfactual GROWS with the
// attacker's budget (denser leaves pay longer shifts, splits multiply, and
// the fanout cascade lands), rather than saturating at a fixed overhead.
func TestCascadeSuperLinearDamage(t *testing.T) {
	initial := serveFixture(t, 150)
	run := func(budget int) CascadeResult {
		t.Helper()
		opts := cascadeOpts()
		opts.LeafTarget = 8
		opts.EpochBudget = budget
		res, err := CascadeAttack(initial, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	budgets := []int{15, 30, 60, 120}
	ratios := make([]float64, len(budgets))
	for i, b := range budgets {
		res := run(b)
		ratios[i] = res.FinalStructRatio()
		if i > 0 && ratios[i] <= ratios[i-1] {
			t.Fatalf("struct ratio not growing with budget: %v at budgets %v", ratios[:i+1], budgets[:i+1])
		}
	}
	// 8× the budget must push the cost ratio well past a constant overhead.
	if ratios[len(ratios)-1] < 2*ratios[0] {
		t.Fatalf("damage ratio saturates: %v across budgets %v", ratios, budgets)
	}
	// At the top budget a fanout cascade (full rebuild) must have landed —
	// that is the mechanism that makes marginal poison keys super-linear.
	if top := run(budgets[len(budgets)-1]); top.VictimStruct.Cascades <= top.CleanStruct.Cascades {
		t.Fatalf("no attacker-caused cascade at budget %d: victim %d, clean %d",
			budgets[len(budgets)-1], top.VictimStruct.Cascades, top.CleanStruct.Cascades)
	}
}

// TestCascadeZeroBudgetMatchesClean: without poison the victim IS the clean
// counterfactual — every ratio pins to 1 and no poison set accrues.
func TestCascadeZeroBudgetMatchesClean(t *testing.T) {
	initial := serveFixture(t, 300)
	opts := cascadeOpts()
	opts.EpochBudget = 0
	res, err := CascadeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Poison.Len() != 0 {
		t.Fatalf("poison accrued with zero budget: %d", res.Poison.Len())
	}
	if res.VictimStruct != res.CleanStruct {
		t.Fatalf("structural divergence without poison: %+v vs %+v",
			res.VictimStruct, res.CleanStruct)
	}
	for _, e := range res.Epochs {
		if e.StructRatio != 1 || e.ProbeRatio != 1 {
			t.Fatalf("epoch %d: ratios %v/%v without poison", e.Epoch, e.StructRatio, e.ProbeRatio)
		}
	}
}

// TestCascadeWorkerEquivalence: scenario-level byte-identity across worker
// counts — parallelism reaches only the oracle's candidate pricing, which
// folds in deterministic task order.
func TestCascadeWorkerEquivalence(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := cascadeOpts()
	seq, err := CascadeAttack(initial, opts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		par, err := CascadeAttack(initial, opts, WithWorkers(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverges from sequential", w)
		}
	}
}

func TestCascadeCancellation(t *testing.T) {
	initial := serveFixture(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CascadeAttack(initial, cascadeOpts(), WithContext(ctx)); err == nil {
		t.Fatal("cancelled cascade attack returned nil error")
	}
}

// TestCascadeStress is the CI -race -count=3 cell: a larger scenario run at
// full parallelism, re-checked for worker equivalence under the race
// detector. Kept separate from TestCascadeWorkerEquivalence so the CI
// serve-stress step can select it by name.
func TestCascadeStress(t *testing.T) {
	initial := serveFixture(t, 800)
	opts := cascadeOpts()
	opts.Epochs = 5
	opts.OpsPerEpoch = 200
	opts.EpochBudget = 40
	seq, err := CascadeAttack(initial, opts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := CascadeAttack(initial, opts, WithWorkers(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("stress run diverges across worker counts")
	}
	if par.VictimStruct.Cost() <= par.CleanStruct.Cost() {
		t.Fatal("stress run caused no structural damage")
	}
}
