package core

import (
	"reflect"
	"testing"

	"cdfpoison/internal/defense"
	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/robust"
	"cdfpoison/internal/workload"
)

// densityChain is the test's workhorse detector chain: the density screen
// plus the dup-mass screen, the two the greedy oracle's clustered poison
// cannot avoid.
func densityChain(t *testing.T) []defense.Policy {
	t.Helper()
	ps, err := defense.ParsePolicyChain("density:8:3|dupmass:3:3")
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestDefenseSpecEnabled(t *testing.T) {
	if (DefenseSpec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	for name, spec := range map[string]DefenseSpec{
		"policies": {Policies: []defense.Policy{defense.DensityPolicy{Window: 8, Ratio: 4}}},
		"fitter":   {Fitter: robust.TheilSen{}},
		"rate":     {RateBudget: 2, RateWindow: 10},
		"balanced": {BalancedSplit: true},
	} {
		if !spec.Enabled() {
			t.Errorf("%s: armed spec reports disabled", name)
		}
	}
	// Sources alone is attribution, not a defense.
	if (DefenseSpec{Sources: 8}).Enabled() {
		t.Fatal("sources-only spec reports enabled")
	}
	// A half-armed rate limit (budget without window) stays off.
	if (DefenseSpec{RateBudget: 2}).Enabled() {
		t.Fatal("budget without window reports enabled")
	}
}

// staticTestOpts keeps honest writes inside the initial key range (Domain =
// max+1): out-of-range writes stretch both twins' CDFs and drown the attack
// signal in shared honest loss.
func staticTestOpts(initial keys.Set) StaticOptions {
	return StaticOptions{Budget: 30, HonestWrites: 120, Domain: initial.Max() + 1, Seed: 9}
}

func TestStaticValidation(t *testing.T) {
	initial := serveFixture(t, 100)
	for name, mutate := range map[string]func(*StaticOptions){
		"negative-budget": func(o *StaticOptions) { o.Budget = -1 },
		"negative-honest": func(o *StaticOptions) { o.HonestWrites = -1 },
	} {
		opts := staticTestOpts(initial)
		mutate(&opts)
		if _, err := StaticAttack(initial, opts); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
	if _, err := StaticAttack(serveFixture(t, 1), staticTestOpts(initial)); err == nil {
		t.Error("single-key initial set accepted")
	}
}

// TestStaticTrajectory: the one-shot attack through the (undefended) write
// path damages the victim's model well beyond the clean twin.
func TestStaticTrajectory(t *testing.T) {
	initial := serveFixture(t, 300)
	res, err := StaticAttack(initial, staticTestOpts(initial))
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("no poison accepted")
	}
	if res.RatioLoss <= 1.5 {
		t.Fatalf("static attack barely moved the loss: ratio %v", res.RatioLoss)
	}
	if res.Defense.Enabled {
		t.Fatal("zero spec reports enabled in the result")
	}
	if res.Defense.PoisonAttempts != 30 || res.Defense.HonestAttempts != 120 {
		t.Fatalf("attempt accounting off: poison %d honest %d",
			res.Defense.PoisonAttempts, res.Defense.HonestAttempts)
	}
	// Zero budget: no poison, ratio pinned to 1 (identical twins).
	quiet := staticTestOpts(initial)
	quiet.Budget = 0
	qres, err := StaticAttack(initial, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if qres.RatioLoss != 1 || qres.Injected != 0 {
		t.Fatalf("zero-budget scenario not clean: ratio %v injected %d", qres.RatioLoss, qres.Injected)
	}
}

// TestStaticGuardDefense: the detector chain prices the greedy poison out
// of the static scenario — damage collapses while the honest stream passes
// nearly untouched (the acceptance shape bench.DefenseSweep reports).
func TestStaticGuardDefense(t *testing.T) {
	initial := serveFixture(t, 300)
	bare, err := StaticAttack(initial, staticTestOpts(initial))
	if err != nil {
		t.Fatal(err)
	}
	armed := staticTestOpts(initial)
	armed.Defense = DefenseSpec{Policies: densityChain(t)}
	got, err := StaticAttack(initial, armed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Defense.Enabled || got.Defense.FlaggedPoison == 0 {
		t.Fatalf("guard saw no poison: %+v", got.Defense)
	}
	if got.RatioLoss*2 > bare.RatioLoss {
		t.Fatalf("guard bought < 2x damage reduction: %v -> %v", bare.RatioLoss, got.RatioLoss)
	}
	if frac := got.Defense.HonestBlockedFrac(); frac > 0.2 {
		t.Fatalf("guard blocked %v of honest traffic", frac)
	}
}

// TestDefenseSourceTaggingInert: arming source attribution alone (no
// limiter, no guard) must not move a single byte of any scenario column —
// the workload keeps its RNG draw order and the write path is a
// passthrough. Serve stands in for all generator-driven scenarios.
func TestDefenseSourceTaggingInert(t *testing.T) {
	initial := serveFixture(t, 240)
	opts := ServeOptions{
		Epochs:      3,
		OpsPerEpoch: 60,
		EpochBudget: 6,
		Shards:      4,
		Policy:      dynamic.ManualPolicy(),
		Workload:    workload.NewZipf(1.1, 85),
		Seed:        11,
	}
	plain, err := ServeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	tagged := opts
	tagged.Defense = DefenseSpec{Sources: 8}
	got, err := ServeAttack(initial, tagged)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatal("source attribution alone changed the serve scenario result")
	}
}

// TestChurnGuardDefense: the detector chain under the churn scenario — the
// drip's clustered keys are flagged before they reach the target shard's
// buffer, so the attacker buys fewer rebuilds and less staleness.
func TestChurnGuardDefense(t *testing.T) {
	initial := serveFixture(t, 400)
	opts := churnOpts()
	bare, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	armed := opts
	armed.Defense = DefenseSpec{Policies: densityChain(t)}
	got, err := ChurnAttack(initial, armed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Defense.FlaggedPoison == 0 {
		t.Fatalf("guard flagged no churn poison: %+v", got.Defense)
	}
	if got.Poison.Len() >= bare.Poison.Len() {
		t.Fatalf("guard let %d poison keys through, bare took %d", got.Poison.Len(), bare.Poison.Len())
	}
	if got.VictimChurn.RebuildTicks >= bare.VictimChurn.RebuildTicks {
		t.Fatalf("guard bought no rebuild work back: %d vs %d ticks",
			got.VictimChurn.RebuildTicks, bare.VictimChurn.RebuildTicks)
	}
	if frac := got.Defense.HonestBlockedFrac(); frac > 0.2 {
		t.Fatalf("guard blocked %v of honest churn traffic", frac)
	}
}

// TestCascadeRateLimitRegression: a per-source write budget throttles the
// cascade drip — the attacker's one source burns its budget, honest sources
// spread round-robin stay under theirs — so the victim's structural-cost
// ratio drops while the clean twin's columns stay byte-identical to the
// undefended run (no honest write was ever refused).
func TestCascadeRateLimitRegression(t *testing.T) {
	initial := serveFixture(t, 200)
	opts := cascadeOpts()
	bare, err := CascadeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	armed := opts
	armed.Defense = DefenseSpec{RateBudget: 2, RateWindow: 40, Sources: 16}
	got, err := CascadeAttack(initial, armed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Defense.ThrottledPoison == 0 {
		t.Fatalf("limiter never throttled the drip: %+v", got.Defense)
	}
	if got.Defense.CleanThrottled != 0 || got.Defense.ThrottledHonest != 0 {
		t.Fatalf("limiter hit honest traffic: %+v", got.Defense)
	}
	if got.FinalStructRatio() >= bare.FinalStructRatio() {
		t.Fatalf("rate limit did not drop the struct-cost ratio: %v vs %v",
			got.FinalStructRatio(), bare.FinalStructRatio())
	}
	// Clean-twin byte-identity: the limiter refused nothing on the clean
	// side, so every Clean* column matches the undefended run exactly.
	if got.CleanStruct != bare.CleanStruct {
		t.Fatalf("clean twin structural accounting drifted: %+v vs %+v", got.CleanStruct, bare.CleanStruct)
	}
	for i := range bare.Epochs {
		b, g := bare.Epochs[i], got.Epochs[i]
		if b.CleanShiftWrites != g.CleanShiftWrites || b.CleanSplits != g.CleanSplits ||
			b.CleanCascades != g.CleanCascades || b.CleanNodes != g.CleanNodes ||
			b.CleanStructCost != g.CleanStructCost || b.CleanProbeTotal != g.CleanProbeTotal ||
			b.CleanLoss != g.CleanLoss || b.CleanRetrains != g.CleanRetrains {
			t.Fatalf("epoch %d clean columns drifted under rate limiting", i+1)
		}
	}
}

// TestCascadeBalancedSplitDefense: the density-balancing split policy alone
// (structure-level hardening, no screening) reduces the attacker's
// structural leverage.
func TestCascadeBalancedSplitDefense(t *testing.T) {
	initial := serveFixture(t, 200)
	opts := cascadeOpts()
	bare, err := CascadeAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	armed := opts
	armed.Defense = DefenseSpec{BalancedSplit: true}
	got, err := CascadeAttack(initial, armed)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Defense.Enabled {
		t.Fatal("balanced-split spec not reported enabled")
	}
	if got.FinalStructRatio() >= bare.FinalStructRatio() {
		t.Fatalf("balanced split did not reduce the struct-cost ratio: %v vs %v",
			got.FinalStructRatio(), bare.FinalStructRatio())
	}
}

// TestDefendedWorkerEquivalence: the fully armed defense plane — detector
// chain, rate limiter, robust fitter, source attribution — stays
// byte-identical across worker counts, accounting included.
func TestDefendedWorkerEquivalence(t *testing.T) {
	initial := serveFixture(t, 300)
	spec := DefenseSpec{
		Policies:   densityChain(t),
		Fitter:     robust.Trimmed{Pct: 10},
		RateBudget: 2, RateWindow: 20,
		Sources: 8,
	}
	sOpts := staticTestOpts(initial)
	sOpts.Defense = spec
	base, err := StaticAttack(initial, sOpts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 3} {
		got, err := StaticAttack(initial, sOpts, WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("defended static scenario diverged at workers=%d", w)
		}
	}

	vOpts := ServeOptions{
		Epochs:      2,
		OpsPerEpoch: 50,
		EpochBudget: 8,
		Shards:      4,
		Policy:      dynamic.ManualPolicy(),
		Workload:    workload.NewZipf(1.1, 85),
		Seed:        13,
		RebuildCost: index.CostModel{Fixed: 10},
		Defense:     spec,
	}
	sBase, err := ServeAttack(initial, vOpts, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	sGot, err := ServeAttack(initial, vOpts, WithWorkers(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sBase, sGot) {
		t.Fatal("defended serve scenario diverged across worker counts")
	}
}

// TestDefendedDeterminism: two identical defended runs produce identical
// results — the limiter, guard caches, and fitters share the scenarios'
// no-hidden-state contract.
func TestDefendedDeterminism(t *testing.T) {
	initial := serveFixture(t, 240)
	opts := churnOpts()
	opts.Defense = DefenseSpec{
		Policies:   densityChain(t),
		Fitter:     robust.TheilSen{},
		RateBudget: 3, RateWindow: 30,
		Sources: 8,
	}
	a, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnAttack(initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("defended churn scenario not deterministic")
	}
}
