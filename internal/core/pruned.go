// The pruned endpoint scan: per greedy step, instead of evaluating every
// gap endpoint (Θ(n) candidates), bound the attainable poisoned loss of
// each fixed-size block of gaps with regression.ClosedForm.Bound and
// evaluate only blocks whose bound beats the current best. Block bounds
// are O(1) each and tight only at block granularity (their envelope slack
// grows with block width), so the "tournament" degenerates to its optimal
// flat form: one bound sweep over all n/prunedLeafGaps blocks (~0.4% of a
// full scan), a best-first seed — evaluate the block with the winning
// bound to establish the pruning threshold — then a threshold pass over
// the remaining bounds. Surviving blocks are evaluated by the UNCHANGED
// endpointScan.chunk and fold through foldBest in block-index order, so
// the chosen key, rank, and losses are bit-identical to the sequential
// full scan — same first-maximum tie-break, same float operation order
// within a block (DESIGN.md §11, "Closed-form oracle & pruned scan"; the
// equivalence is pinned by differential and property tests in
// pruned_test.go).
//
// Determinism: the bound sweep, the seed selection, and the threshold pass
// run on the calling goroutine and depend only on (moments, key set, block
// size), so the visited-block set — and with it BlocksVisited and
// Candidates — is identical for every worker count. Only the survivor
// evaluation fans out across the pool, and its results fold in block-index
// order.

package core

import (
	"math"

	"cdfpoison/internal/engine"
	"cdfpoison/internal/regression"
)

// prunedLeafGaps is the number of gaps per block. Small enough that a
// surviving block costs only ~2× that many O(1) evaluations and that the
// bound envelope stays tight (its slack scales with block width); large
// enough that the per-block bound (a few dozen float ops) stays a
// vanishing fraction of evaluating the block.
const prunedLeafGaps = 128

// prunedMinGaps is the set size below which the plain full scan runs
// instead: with only a handful of blocks the bound sweep costs as much as
// scanning. The threshold depends only on n, never on the worker count, so
// the dispatch itself cannot break determinism.
const prunedMinGaps = 4 * prunedLeafGaps

// prunedScan wraps an endpointScan with the block-bound sweep. Like
// endpointScan, every buffer lives on the struct so the greedy loop reaches
// a zero-allocation steady state; run() re-derives the ClosedForm snapshot
// from the (possibly mutated) Prefix each call.
type prunedScan struct {
	scan      *endpointScan
	cf        regression.ClosedForm
	nGaps     int
	nLeaves   int
	seedLeaf  int           // block with the winning bound
	seedBest  candidateBest // its local best: the pruning threshold
	seedGap   int           // gap index of seedBest (tie-break anchor)
	bounds    []float64     // per-block loss upper bounds
	survivors []int         // surviving block indices, ascending
	evalBuf   []candidateBest
	ordered   []candidateBest
	survFn    func(clo, chi int) (candidateBest, error)
}

func newPrunedScan(pre *regression.Prefix) *prunedScan {
	s := &prunedScan{scan: newEndpointScan(pre)}
	s.survFn = s.survChunk // bind once; a per-step method value would allocate
	return s
}

// leafGaps returns the gap range covered by block b.
func (s *prunedScan) leafGaps(b int) (glo, ghi int) {
	glo = b * prunedLeafGaps
	ghi = glo + prunedLeafGaps
	if ghi > s.nGaps {
		ghi = s.nGaps
	}
	return glo, ghi
}

// survChunk evaluates surviving blocks [clo, chi) through the unchanged
// endpoint chunk and reduces them locally in block order, mirroring
// endpointScan.chunk's contract so any chunking folds identically.
func (s *prunedScan) survChunk(clo, chi int) (candidateBest, error) {
	out := candidateBest{loss: -1}
	for i := clo; i < chi; i++ {
		glo, ghi := s.leafGaps(s.survivors[i])
		b, err := s.scan.chunk(glo, ghi)
		if err != nil {
			return out, err
		}
		out.candidates += b.candidates
		if b.candidates > 0 && b.loss > out.loss {
			out.key, out.rank, out.loss = b.key, b.rank, b.loss
		}
	}
	return out, nil
}

// run executes one pruned scan. Small sets and WithFullScan fall through to
// the plain sequential-equivalent full scan (BlocksVisited/BlocksTotal stay
// zero there: no pruning happened).
func (s *prunedScan) run(ex exec) (SinglePointResult, error) {
	s.scan.ks = s.scan.pre.Set()
	s.nGaps = s.scan.ks.Len() - 1
	if ex.fullScan || s.nGaps < prunedMinGaps {
		return s.scan.run(ex)
	}
	s.cf = s.scan.pre.ClosedForm()
	s.nLeaves = (s.nGaps + prunedLeafGaps - 1) / prunedLeafGaps
	if cap(s.bounds) < s.nLeaves {
		// Size every scratch buffer for the worst case (all blocks survive)
		// up front; the greedy loop grows the set one key per step, so the
		// block count crosses the capacity rarely and the steady state
		// stays allocation-free (DESIGN.md §2, "Allocation budget").
		s.bounds = make([]float64, 2*s.nLeaves)
		s.survivors = make([]int, 0, 2*s.nLeaves)
		s.ordered = make([]candidateBest, 0, 2*s.nLeaves+1)
		s.evalBuf = make([]candidateBest, 0, 2*s.nLeaves)
	}

	// Bound sweep + best-first seed selection. Saturated blocks (every
	// interior slot occupied) hold no candidate and get −Inf. The seed is
	// the largest FINITE bound (strict ">" keeps the first of equal bounds,
	// preserving index order): +Inf means "this bound is not informative" —
	// such blocks are unconditionally visited below, but seeding from one
	// would anchor the threshold to an arbitrary block's best and admit
	// nearly everything.
	ks := s.scan.ks
	bestBound := math.Inf(-1)
	s.seedLeaf = -1
	for b := 0; b < s.nLeaves; b++ {
		glo, ghi := s.leafGaps(b)
		kA, kB := ks.At(glo), ks.At(ghi)
		bd := math.Inf(-1)
		if kB-kA != int64(ghi-glo) {
			bd = s.cf.Bound(glo, ghi, kA+1, kB-1)
		}
		s.bounds[b] = bd
		if bd > bestBound && !math.IsInf(bd, 1) {
			bestBound, s.seedLeaf = bd, b
		}
	}
	if s.seedLeaf == -1 {
		// No finite bound anywhere: seed from the first unsaturated block.
		for b := 0; b < s.nLeaves; b++ {
			if !math.IsInf(s.bounds[b], -1) {
				s.seedLeaf = b
				break
			}
		}
	}
	if s.seedLeaf == -1 {
		return SinglePointResult{}, ErrNoGap // fully saturated key range
	}

	// Seed: evaluate the winning block to establish the threshold. A loose
	// winner cannot affect correctness — it only weakens the threshold,
	// admitting more survivors.
	glo, ghi := s.leafGaps(s.seedLeaf)
	seed, err := s.scan.chunk(glo, ghi)
	if err != nil {
		return SinglePointResult{}, err
	}
	s.seedBest = seed
	s.seedGap = seed.rank - 2 // chunk sets rank = gap index + 2
	if seed.candidates == 0 {
		s.seedGap = glo // empty block: loss −1 admits every unsaturated block
	}

	// Threshold pass: a block survives when its bound beats the seed's best
	// — or ties it from an earlier gap, since the first-maximum tie-break
	// keeps the earlier candidate, so an equal-loss candidate at a later
	// gap can never win the fold. Survivors accumulate in block order.
	s.survivors = s.survivors[:0]
	t := s.seedBest.loss
	for b := 0; b < s.nLeaves; b++ {
		if b == s.seedLeaf {
			continue // already evaluated
		}
		if bd := s.bounds[b]; bd > t || (bd == t && b*prunedLeafGaps < s.seedGap) {
			s.survivors = append(s.survivors, b)
		}
	}

	// Evaluate survivors across the pool; one block per task keeps chunk
	// results in block order for the insertion fold below.
	chunks, err := engine.MapChunksInto(ex.ctx, ex.pool, len(s.survivors), 1, s.evalBuf, s.survFn)
	s.evalBuf = chunks
	if err != nil {
		return SinglePointResult{}, err
	}

	// Fold every evaluated block — survivors plus the seed — in block-index
	// order through foldBest, reproducing the sequential scan's
	// first-maximum tie-break over the visited subset.
	s.ordered = s.ordered[:0]
	seeded := false
	for i, b := range chunks {
		if !seeded && s.survivors[i] > s.seedLeaf {
			s.ordered = append(s.ordered, seed)
			seeded = true
		}
		s.ordered = append(s.ordered, b)
	}
	if !seeded {
		s.ordered = append(s.ordered, seed)
	}
	res := SinglePointResult{
		CleanLoss:     s.scan.pre.CleanLoss(),
		PoisonedLoss:  -1,
		BlocksVisited: 1 + len(s.survivors),
		BlocksTotal:   s.nLeaves,
	}
	foldBest(s.ordered, &res)
	if res.PoisonedLoss < 0 {
		return SinglePointResult{}, ErrNoGap
	}
	return res, nil
}
