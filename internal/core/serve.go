package core

import (
	"fmt"
	"slices"

	"cdfpoison/internal/dynamic"
	"cdfpoison/internal/index"
	"cdfpoison/internal/keys"
	"cdfpoison/internal/shard"
	"cdfpoison/internal/workload"
)

// ServeOptions parameterizes the attack-under-load scenario: poisoning a
// sharded serving index while an honest population reads and writes it.
type ServeOptions struct {
	// Epochs is the number of serving epochs (>= 1).
	Epochs int
	// OpsPerEpoch is the honest operation count per epoch, drawn from
	// Workload (>= 0).
	OpsPerEpoch int
	// EpochBudget is the attacker's poison-key budget per epoch (>= 0).
	EpochBudget int
	// Shards is the victim's shard count (>= 1); 1 is the unsharded case,
	// probe-for-probe identical to the plain dynamic index.
	Shards int
	// Policy is each shard's merge-and-retrain policy. As in the online
	// scenario, dynamic.Manual means the scenario force-retrains every
	// shard (victim and counterfactual) at the end of every epoch.
	Policy dynamic.RetrainPolicy
	// Workload is the honest traffic mix (reads by rank over the initial
	// keys, uniform writes over [0, Domain)).
	Workload workload.Spec
	// Domain is the write-key universe size; 0 defaults to twice the
	// initial key span.
	Domain int64
	// Seed drives the workload stream (both indexes see the identical
	// stream, so the attacker is the only difference between them).
	Seed uint64
	// RebuildCost prices each retrain in logical ticks for the background-
	// retrain pipeline both indexes run behind (one tick per operation —
	// honest or poison). The zero value is the ZERO-COST model: every
	// rebuild publishes instantly and the scenario is byte-identical to the
	// historical synchronous path (the golden equivalence the serve CSV
	// fingerprints pin). With a non-zero model, epoch-end read probes are
	// evaluated against the PUBLISHED (possibly stale) read plane while the
	// loss columns keep reporting live content — staleness shows up as the
	// gap between them.
	RebuildCost index.CostModel
	// Defense arms the defense plane (guard chain, robust fitter, rate
	// limiting) on victim and clean twin alike; the zero value changes
	// nothing (see DefenseSpec).
	Defense DefenseSpec
}

func (o ServeOptions) domain(initial keys.Set) int64 {
	if o.Domain > 0 {
		return o.Domain
	}
	return 2 * (initial.Max() + 1)
}

func (o ServeOptions) validate() error {
	if o.Epochs < 1 {
		return fmt.Errorf("core: serve scenario needs Epochs >= 1, got %d", o.Epochs)
	}
	if o.OpsPerEpoch < 0 {
		return fmt.Errorf("core: negative ops per epoch %d", o.OpsPerEpoch)
	}
	if o.EpochBudget < 0 {
		return fmt.Errorf("core: negative per-epoch budget %d", o.EpochBudget)
	}
	if o.Shards < 1 {
		return fmt.Errorf("core: serve scenario needs Shards >= 1, got %d", o.Shards)
	}
	if err := o.RebuildCost.Validate(); err != nil {
		return err
	}
	return o.Workload.Validate()
}

// ServeShardReport is one shard's end-of-epoch state, with its loss ratio
// against the same shard of the clean counterfactual (both indexes share
// the router, so shard i covers the same key range on both sides).
type ServeShardReport struct {
	Shard     int
	Keys      int
	Buffered  int
	Retrains  int
	CleanLoss float64 // counterfactual shard's model-vs-content MSE
	PoisLoss  float64 // victim shard's model-vs-content MSE
	RatioLoss float64 // SafeRatio(PoisLoss, CleanLoss)
}

// ServeEpochReport is the scenario state measured at the end of one epoch.
type ServeEpochReport struct {
	Epoch int // 1-based
	// Reads/Writes count this epoch's honest operations by type.
	Reads, Writes int
	// Injected is this epoch's accepted poison count; PoisonTotal,
	// Displaced, Retrains, and CleanRetrains are cumulative.
	Injected      int
	PoisonTotal   int
	Displaced     int // honest writes the victim rejected because poison occupied the slot
	Retrains      int // victim retrains, summed across shards
	CleanRetrains int
	BufferLen     int // victim delta-buffer keys, summed across shards
	// Aggregate model-vs-content loss (key-weighted across shards) and the
	// ratio against the clean counterfactual.
	CleanLoss    float64
	PoisonedLoss float64
	RatioLoss    float64
	// Probe cost of this epoch's read keys, evaluated on both indexes:
	// exact totals plus means per read.
	CleanProbeTotal    int64
	PoisonedProbeTotal int64
	CleanProbes        float64
	PoisonedProbes     float64
	// Imbalance is the victim's max-shard-over-mean-shard key count; the
	// clean index's imbalance is the honest baseline.
	Imbalance      float64
	CleanImbalance float64
	// Stale reports whether the victim's read plane was serving a frozen
	// pre-rebuild snapshot when this epoch's probes were measured — always
	// false with the zero rebuild-cost model.
	Stale bool
	// Shards is the per-shard breakdown (victim vs clean), in shard order.
	Shards []ServeShardReport
}

// MaxShardRatio returns the epoch's worst per-shard loss ratio (floored at
// 1) — the number a serving operator watching per-shard dashboards sees.
func (e ServeEpochReport) MaxShardRatio() float64 {
	best := 1.0
	for _, s := range e.Shards {
		if s.RatioLoss > best {
			best = s.RatioLoss
		}
	}
	return best
}

// ServeResult reports the full serving scenario.
type ServeResult struct {
	Shards   int
	Epochs   []ServeEpochReport
	Poison   keys.Set // union of all accepted poison keys
	Retrains int      // victim total across shards at scenario end
	// VictimChurn / CleanChurn are the retrain pipelines' cumulative
	// accounting (all zeros under the zero rebuild-cost model except the
	// trigger/publish counters).
	VictimChurn index.ChurnStats
	CleanChurn  index.ChurnStats
	// Defense is the defense-plane accounting (zero when no defense armed).
	Defense DefenseReport
	// Eval reports which probe-evaluation path produced the probe columns
	// (sorted-batch kernel by default, per-key under WithPerKeyEval).
	Eval EvalStats
}

// FinalRatio returns the last epoch's aggregate loss ratio.
func (r ServeResult) FinalRatio() float64 {
	if len(r.Epochs) == 0 {
		return 1
	}
	return r.Epochs[len(r.Epochs)-1].RatioLoss
}

// MaxRatio returns the largest per-epoch aggregate loss ratio.
func (r ServeResult) MaxRatio() float64 {
	best := 1.0
	for _, e := range r.Epochs {
		if e.RatioLoss > best {
			best = e.RatioLoss
		}
	}
	return best
}

// MaxShardRatio returns the single worst per-shard loss ratio across the
// whole scenario — sharding concentrates damage, so this exceeds the
// aggregate ratio whenever the attacker focuses on a subset of ranges.
func (r ServeResult) MaxShardRatio() float64 {
	best := 1.0
	for _, e := range r.Epochs {
		if m := e.MaxShardRatio(); m > best {
			best = m
		}
	}
	return best
}

// ServeAttack mounts the attack-under-load scenario: an adversary with a
// per-epoch key budget poisons a range-partitioned sharded serving index
// (internal/shard) while an honest population keeps reading and writing it.
// Both indexes run behind the background-retrain pipeline (index.Pipeline):
// writes and maintenance drive the WRITE and ADMIN planes, probes are
// measured against the READ plane's published snapshot, and the logical
// clock advances one tick per operation. With the default zero RebuildCost
// every rebuild publishes instantly and the scenario is byte-identical to
// the historical synchronous implementation.
//
// Each epoch:
//
//  1. OpsPerEpoch honest operations are drawn from the workload stream.
//     Writes are inserted into both the victim and a clean counterfactual
//     index (same router, same policy, same stream); reads are collected
//     as the epoch's query workload. Every operation advances both
//     pipelines' clocks by one tick.
//  2. The attacker observes the victim's full visible content and injects
//     up to EpochBudget poison keys computed by Algorithm 1
//     (GreedyMultiPoint) against it. Inserts route through the victim's
//     shards and can trigger per-shard policy retrains mid-epoch (each
//     poison insert is one tick on both clocks).
//  3. With dynamic.Manual both indexes are force-retrained shard by shard
//     (the epoch is the maintenance cycle); other policies retrain
//     organically per shard. Non-zero rebuild costs defer each retrain's
//     PUBLICATION — reads keep hitting the pre-rebuild snapshot until the
//     cost elapses.
//  4. The epoch report captures per-shard and aggregate model-vs-content
//     loss ratios, exact probe totals of the epoch's reads against both
//     read planes, shard imbalance, buffer depth, and retrain counts.
//
// Determinism contract: the workload stream is a pure function of
// (Workload, initial, Domain, Seed); WithWorkers parallelism reaches only
// the oracle's candidate scans, the shard rebuild fan-out, and the
// read-probe evaluation, all of which fold in index order — the result is
// byte-identical for every worker count (TestServeWorkerEquivalence).
// WithCancellation aborts between epochs and inside the oracle with
// ctx.Err().
func ServeAttack(initial keys.Set, opts ServeOptions, execOpts ...Option) (ServeResult, error) {
	if err := opts.validate(); err != nil {
		return ServeResult{}, err
	}
	vShard, err := shard.NewWithFit(initial, opts.Shards, opts.Policy, opts.Defense.fitFunc())
	if err != nil {
		return ServeResult{}, err
	}
	cShard, err := shard.NewWithFit(initial, opts.Shards, opts.Policy, opts.Defense.fitFunc())
	if err != nil {
		return ServeResult{}, err
	}
	gen, err := workload.NewGenerator(opts.Workload, initial, opts.domain(initial), opts.Seed)
	if err != nil {
		return ServeResult{}, err
	}
	gen.SetSources(opts.Defense.Sources)
	vBack, vGuard := opts.Defense.wrap(vShard)
	cBack, cGuard := opts.Defense.wrap(cShard)
	ex := newExec(execOpts)
	victim := index.NewPipeline(vBack, opts.RebuildCost).WithPool(ex.ctx, ex.pool)
	clean := index.NewPipeline(cBack, opts.RebuildCost).WithPool(ex.ctx, ex.pool)
	opClock := 0
	tick := func(n int) {
		opClock += n
		victim.Tick(n)
		clean.Tick(n)
	}

	res := ServeResult{Shards: opts.Shards, Epochs: make([]ServeEpochReport, 0, opts.Epochs)}
	res.Defense.Enabled = opts.Defense.Enabled()
	vArm := opts.Defense.newArm(victim, vGuard, &res.Defense, false)
	cArm := opts.Defense.newArm(clean, cGuard, &res.Defense, true)
	atkSrc := opts.Defense.attackerSource()
	var allPoison []int64
	displaced := 0
	pe := newProbeEval()
	var reads []int64 // epoch read-key scratch, reused across epochs
	for e := 0; e < opts.Epochs; e++ {
		if err := ex.ctx.Err(); err != nil {
			return ServeResult{}, err
		}
		rep := ServeEpochReport{Epoch: e + 1}
		// 1. Honest traffic: one shared stream for both indexes, one tick
		// per operation.
		reads = reads[:0]
		for _, op := range gen.Ops(opts.OpsPerEpoch) {
			tick(1)
			if op.Read {
				rep.Reads++
				reads = append(reads, op.Key)
				continue
			}
			rep.Writes++
			cleanOK, _ := cArm.insert(op.Key, op.Source, opClock, false)
			victimOK, _ := vArm.insert(op.Key, op.Source, opClock, false)
			if cleanOK && !victimOK {
				displaced++
			}
		}
		// 2. The attack: Algorithm 1 against the victim's visible content
		// (the write-plane truth — an insertion adversary sees what it can
		// write around, not the lagging read plane).
		if opts.EpochBudget > 0 {
			g, err := GreedyMultiPoint(victim.Keys(), opts.EpochBudget, execOpts...)
			if err != nil {
				return ServeResult{}, fmt.Errorf("core: serve epoch %d oracle: %w", e+1, err)
			}
			for _, k := range g.Poison {
				tick(1)
				if ok, _ := vArm.insert(k, atkSrc, opClock, true); ok {
					allPoison = append(allPoison, k)
					rep.Injected++
				}
			}
		}
		// 3. Maintenance.
		if opts.Policy.Kind == dynamic.Manual {
			victim.Retrain()
			clean.Retrain()
		}
		// 4. Measurement. The read keys are only consumed by the probe
		// evaluation and integer probe sums are order-invariant, so sorting
		// them in place (the batch kernel's precondition) changes no column.
		rep.PoisonTotal = len(allPoison)
		rep.Displaced = displaced
		rep.Stale = victim.IsStale()
		slices.Sort(reads)
		if err := measureServe(&rep, vShard, cShard, victim, clean, reads, pe, ex); err != nil {
			return ServeResult{}, err
		}
		res.Epochs = append(res.Epochs, rep)
	}
	res.VictimChurn = victim.ChurnStats()
	res.CleanChurn = clean.ChurnStats()
	res.Eval = pe.stats
	// Epochs >= 1 is validated, so the last report is always present; its
	// cumulative retrain count is the scenario total (no extra Stats scan).
	res.Retrains = res.Epochs[len(res.Epochs)-1].Retrains
	ps, err := keys.NewStrict(allPoison)
	if err != nil {
		return ServeResult{}, fmt.Errorf("core: serve poison keys collide: %w", err)
	}
	res.Poison = ps
	return res, nil
}

// serveProbeGrainFloor mirrors the online scenario's probe-scan chunking.
const serveProbeGrainFloor = 256

// measureServe fills the epoch report's loss, probe, and shard columns.
// Loss, imbalance, and buffer columns read the LIVE shard state (the
// admin-plane truth the operator's dashboards aggregate); probe columns
// are measured against each pipeline's PUBLISHED read plane, captured once
// as an immutable snapshot and then fanned across the worker pool in
// chunks of the caller-sorted read batch — each chunk runs the sorted-batch
// kernel (DESIGN.md §12), snapshot lookups are pure reads on frozen state,
// and the sums are integers folded in chunk order, so any worker count (and
// the per-key WithPerKeyEval path) produces identical bytes, with no
// mutable state shared across workers at all.
func measureServe(rep *ServeEpochReport, victim, clean *shard.Index, vPipe, cPipe *index.Pipeline, reads []int64, pe *probeEval, ex exec) error {
	// Per-shard stats are the expensive part (ContentLoss is an O(shard)
	// scan); collect them once per side and fold the aggregates here with
	// the same key-weighted arithmetic shard.Index.Stats uses, instead of
	// paying a second full pass through victim.Stats()/clean.Stats().
	vShards, cShards := victim.ShardStats(), clean.ShardStats()
	aggregate := func(shards []index.Stats) (keysTotal, buffered, retrains int, contentLoss float64) {
		var contentW float64
		for _, st := range shards {
			keysTotal += st.Keys
			buffered += st.Buffered
			retrains += st.Retrains
			contentW += st.ContentLoss * float64(st.Keys)
		}
		if keysTotal > 0 {
			contentLoss = contentW / float64(keysTotal)
		}
		return keysTotal, buffered, retrains, contentLoss
	}
	_, vBuffered, vRetrains, vLoss := aggregate(vShards)
	_, _, cRetrains, cLoss := aggregate(cShards)
	rep.Retrains = vRetrains
	rep.CleanRetrains = cRetrains
	rep.BufferLen = vBuffered
	rep.CleanLoss = cLoss
	rep.PoisonedLoss = vLoss
	rep.RatioLoss = SafeRatio(rep.PoisonedLoss, rep.CleanLoss)
	rep.Imbalance = victim.Imbalance()
	rep.CleanImbalance = clean.Imbalance()

	rep.Shards = make([]ServeShardReport, len(vShards))
	for i := range vShards {
		rep.Shards[i] = ServeShardReport{
			Shard:     i,
			Keys:      vShards[i].Keys,
			Buffered:  vShards[i].Buffered,
			Retrains:  vShards[i].Retrains,
			CleanLoss: cShards[i].ContentLoss,
			PoisLoss:  vShards[i].ContentLoss,
			RatioLoss: SafeRatio(vShards[i].ContentLoss, cShards[i].ContentLoss),
		}
	}

	n := len(reads)
	vSnap, cSnap := vPipe.Snapshot(), cPipe.Snapshot()
	total, err := pe.measurePair(ex, serveProbeGrainFloor, reads, cSnap, vSnap)
	if err != nil {
		return err
	}
	rep.CleanProbeTotal = total.clean
	rep.PoisonedProbeTotal = total.victim
	if n > 0 {
		rep.CleanProbes = float64(total.clean) / float64(n)
		rep.PoisonedProbes = float64(total.victim) / float64(n)
	}
	return nil
}
