// Quickstart: the 60-second tour of cdfpoison.
//
// It generates a key set, fits the learned index's regression, mounts the
// greedy poisoning attack, and shows the error amplification — the paper's
// core result in a dozen lines of API calls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	// 1. A victim's key set: 1,000 uniform keys over a 20,000-slot domain —
	//    the friendly case for a learned index (nearly linear CDF).
	rng := cdfpoison.NewRNG(2024)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 20_000)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The learned index's model: linear regression on the CDF.
	clean, err := cdfpoison.FitCDF(ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean model:    %v\n", clean)

	// 3. The attack: 10% poisoning keys, each chosen optimally against the
	//    current training set (Algorithm 1 of the paper).
	atk, err := cdfpoison.GreedyMultiPoint(ks, 100)
	if err != nil {
		log.Fatal(err)
	}
	poisoned, err := cdfpoison.FitCDF(atk.Poisoned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("poisoned model: %v\n", poisoned)
	fmt.Printf("\nratio loss: %.1f× with %d poison keys (%.0f%% of the data)\n",
		atk.RatioLoss(), len(atk.Poison), 100*float64(len(atk.Poison))/float64(ks.Len()))

	// 4. What that means for the index: the prediction error bound, which
	//    dictates the last-mile search cost, blows up correspondingly.
	idxClean, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 10})
	if err != nil {
		log.Fatal(err)
	}
	idxPois, err := cdfpoison.BuildRMI(atk.Poisoned, cdfpoison.RMIConfig{Fanout: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindex search window (avg): %.1f → %.1f slots\n",
		idxClean.Stats().AvgWindow, idxPois.Stats().AvgWindow)
	fmt.Println("\nEvery stored key is still found — just more slowly:")
	r := idxPois.Lookup(ks.At(500))
	fmt.Printf("lookup(%d) = pos %d, found=%v, probes=%d\n",
		ks.At(500), r.Pos, r.Found, r.Probes)
}
