// Retrain churn: attacking the rebuild pipeline instead of the model.
//
// A sharded index serves reads through snapshot isolation: every rebuild
// costs ticks, and until it publishes, the read plane stays frozen at the
// pre-rebuild snapshot. The adversary here does not primarily chase model
// loss — it drip-feeds keys into the ONE shard where each key buys the
// most rebuild work, keeping the rebuild worker saturated so stale windows
// chain and publish latency climbs past the raw rebuild cost. The clean
// counterfactual runs the identical pipeline and stream, so every stale
// read beyond its baseline is attacker-caused.
//
//	go run ./examples/retrain_churn
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(7)
	const n = 2_000
	ks, err := cdfpoison.UniformKeys(rng, n, n*40)
	if err != nil {
		log.Fatal(err)
	}

	// --- The pipeline, standalone: ticks, staleness, publication ---------
	idx, err := cdfpoison.NewShardedIndex(ks, 4, cdfpoison.RetrainAtBufferSize(32))
	if err != nil {
		log.Fatal(err)
	}
	// Rebuild cost: 20 flat ticks + 10 ticks per 100 keys rebuilt.
	cost := cdfpoison.RebuildCostModel{Fixed: 20, PerKey: 10, Unit: 100}
	pipe := cdfpoison.NewRetrainPipeline(idx, cost)
	snapshotBefore := pipe.Snapshot() // immutable: survives everything below

	// Fill one shard's buffer to its threshold: the 32nd accepted key
	// triggers a rebuild of that shard, and the read plane goes stale.
	inserted := 0
	for k := ks.Min() + 1; inserted < 32; k += 3 {
		pipe.Tick(1)
		if ok, _ := pipe.Insert(k); ok {
			inserted++
		}
	}
	fmt.Printf("after %d inserts: stale=%v (rebuild in flight)\n", inserted, pipe.IsStale())
	pipe.Tick(1_000) // let the rebuild publish
	st := pipe.ChurnStats()
	fmt.Printf("after settling:  stale=%v, publishes=%d, stale ticks=%d\n",
		pipe.IsStale(), st.Publishes, st.StaleTicks)
	fmt.Printf("held snapshot unchanged: len %d vs live %d\n",
		snapshotBefore.Len(), pipe.Len())

	// --- The scenario: churn attack vs clean counterfactual --------------
	res, err := cdfpoison.ChurnAttack(ks, cdfpoison.ChurnOptions{
		Epochs:      5,
		OpsPerEpoch: 400,
		EpochBudget: 60,
		Shards:      4,
		Policy:      cdfpoison.RetrainAtBufferSize(32),
		Workload:    cdfpoison.ZipfWorkload(1.1, 90),
		Seed:        11,
		Cost:        cost,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nepoch  target  injected  stale%  publishes  coalesced  lat_max  ratio")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %7d %9d %6.1f%% %10d %10d %8d %6.2f\n",
			e.Epoch, e.TargetShard, e.Injected, e.StaleFrac*100,
			e.Publishes, e.Coalesced, e.MaxPublishLatency, e.RatioLoss)
	}
	fmt.Printf("\nvictim stale ticks %d vs clean %d — the attacker-caused stale exposure\n",
		res.VictimChurn.StaleTicks, res.CleanChurn.StaleTicks)
	fmt.Printf("max stale-read fraction %.2f, worst publish latency %d ticks\n",
		res.MaxStaleFrac(), res.VictimChurn.MaxLatencyTicks)
}
