// Two-stage RMI attack: the paper's Section V scenario on a skewed
// (log-normal) key distribution, where the attack is at its strongest.
//
// The attacker poisons the second-stage linear regression models of a
// recursive model index by splitting a global budget across models
// (Algorithm 2): uniform initial allocation, then greedy exchanges of
// poison-key slots between adjacent models under a per-model threshold.
//
//	go run ./examples/rmi_attack
package main

import (
	"fmt"
	"log"
	"sort"

	"cdfpoison"
)

func main() {
	// Skewed victim data: log-normal(0, 2) keys — dense head, sparse tail —
	// the distribution Kraska et al. evaluate and where Figure 6 reports
	// the largest amplification.
	rng := cdfpoison.NewRNG(99)
	ks, err := cdfpoison.LogNormalKeys(rng, 20_000, 1_000_000, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim key set: n=%d, domain [%d, %d]\n", ks.Len(), ks.Min(), ks.Max())

	const (
		modelSize = 200 // keys per second-stage model
		percent   = 10  // poisoning percentage
		alpha     = 3   // per-model threshold multiplier
	)
	numModels := ks.Len() / modelSize
	res, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
		NumModels: numModels,
		Percent:   percent,
		Alpha:     alpha,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nRMI architecture: %d second-stage models × %d keys\n", numModels, modelSize)
	fmt.Printf("budget: %d keys (%d injected), per-model threshold %d, %d greedy exchanges\n",
		res.Budget, res.Injected, res.Threshold, res.Moves)
	fmt.Printf("L_RMI: %.4g → %.4g  (ratio %.1f×)\n",
		res.CleanRMILoss, res.PoisonedRMILoss, res.RMIRatio())

	// Distribution of per-model damage (the paper's boxplots).
	ratios := res.PerModelRatios()
	sort.Float64s(ratios)
	q := func(p float64) float64 { return ratios[int(p*float64(len(ratios)-1))] }
	fmt.Printf("\nper-model ratio loss: min %.2f, q1 %.2f, median %.2f, q3 %.2f, max %.1f\n",
		q(0), q(0.25), q(0.5), q(0.75), q(1))

	// The hardest-hit models, with their allocation — showing the skew the
	// volume allocator discovered.
	type hit struct {
		idx    int
		ratio  float64
		budget int
	}
	var hits []hit
	for _, m := range res.Models {
		hits = append(hits, hit{m.Index, m.RatioLoss, m.Budget})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].ratio > hits[j].ratio })
	fmt.Println("\nhardest-hit second-stage models:")
	for _, h := range hits[:5] {
		fmt.Printf("  model %4d: ratio %8.1f×, budget %d keys (uniform share would be %d)\n",
			h.idx, h.ratio, h.budget, res.Budget/numModels)
	}

	// Rebuild the index on the poisoned data and measure the user-visible
	// damage: wider guaranteed search windows on every lookup.
	cleanIdx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: numModels})
	if err != nil {
		log.Fatal(err)
	}
	poisIdx, err := cdfpoison.BuildRMI(ks.Union(res.Poison), cdfpoison.RMIConfig{Fanout: numModels})
	if err != nil {
		log.Fatal(err)
	}
	cs, ps := cleanIdx.Stats(), poisIdx.Stats()
	cp, _ := cleanIdx.AvgProbes(ks.Keys())
	pp, _ := poisIdx.AvgProbes(ks.Keys())
	fmt.Printf("\nindex impact (legitimate-key lookups):\n")
	fmt.Printf("  avg search window: %6.1f → %6.1f slots\n", cs.AvgWindow, ps.AvgWindow)
	fmt.Printf("  max search window: %6d → %6d slots\n", cs.MaxWindow, ps.MaxWindow)
	fmt.Printf("  avg probes:        %6.2f → %6.2f comparisons\n", cp, pp)
}
