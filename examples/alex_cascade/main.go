// Split cascade: attacking the index's structure instead of its model.
//
// An ALEX-style gapped-array index absorbs inserts into slot gaps at the
// position its per-leaf model predicts; when a leaf runs out of local
// slack, the insert shifts an occupied run, and when occupancy crosses the
// split threshold the leaf splits — past the root's fanout limit, the
// whole index rebuilds. The adversary here does not chase model loss: it
// drip-feeds keys into the DENSEST leaf, where every insert pays the
// longest shifts and pushes occupancy toward the threshold, so splits
// chain into full rebuild cascades. The clean counterfactual absorbs the
// identical honest stream, so every shift write, split, and cascade beyond
// its baseline is attacker-caused.
//
//	go run ./examples/alex_cascade
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(7)
	const n = 1_000
	ks, err := cdfpoison.UniformKeys(rng, n, n*40)
	if err != nil {
		log.Fatal(err)
	}

	// --- The index, standalone: gapped inserts, splits, accounting -------
	idx, err := cdfpoison.NewAlexIndex(ks, 16)
	if err != nil {
		log.Fatal(err)
	}
	snapshotBefore := idx.Snapshot() // immutable: survives everything below
	// Hammer one key range: each insert lands in the same leaf, shifts
	// grow, and the leaf splits once its occupancy crosses the threshold.
	base := ks.Min() + 1
	accepted := 0
	for k := base; accepted < 40; k++ {
		if ok, _ := idx.Insert(k); ok {
			accepted++
		}
	}
	st := idx.Struct()
	fmt.Printf("after %d clustered inserts: %d slot writes from shifts, %d splits, %d nodes\n",
		accepted, st.ShiftWrites, st.Splits, st.Nodes)
	fmt.Printf("held snapshot unchanged: len %d vs live %d\n",
		snapshotBefore.Len(), idx.Len())

	// --- The scenario: cascade attack vs clean counterfactual ------------
	res, err := cdfpoison.CascadeAttack(ks, cdfpoison.CascadeOptions{
		Epochs:      5,
		OpsPerEpoch: 200,
		EpochBudget: 40,
		LeafTarget:  16,
		Workload:    cdfpoison.ZipfWorkload(1.1, 85),
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nepoch  node  density  injected  shift_wr  splits  cascades  struct_ratio")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %5d %8.2f %9d %9d %7d %9d %13.2f\n",
			e.Epoch, e.TargetNode, e.TargetDensity, e.Injected,
			e.ShiftWrites, e.Splits, e.Cascades, e.StructRatio)
	}
	fmt.Printf("\nvictim structural cost %d vs clean %d — the attacker-caused maintenance\n",
		res.VictimStruct.Cost(), res.CleanStruct.Cost())
	fmt.Printf("final struct ratio %.2f×, %d splits (+%d cascades) vs clean %d (+%d)\n",
		res.FinalStructRatio(), res.VictimStruct.Splits, res.VictimStruct.Cascades,
		res.CleanStruct.Splits, res.CleanStruct.Cascades)
}
