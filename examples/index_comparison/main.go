// Index comparison: the motivating trade-off of learned indexes, and what
// poisoning does to it.
//
// Kraska et al. showed a two-stage RMI can beat a B-Tree on lookups while
// using orders of magnitude less memory. This example rebuilds that
// comparison with this repository's substrates, then poisons the RMI's
// training data and shows the advantage eroding — the "price of tailoring
// the index to your data".
//
//	go run ./examples/index_comparison
package main

import (
	"fmt"
	"log"
	"time"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(3)
	const n = 100_000
	ks, err := cdfpoison.UniformKeys(rng, n, 2_000_000)
	if err != nil {
		log.Fatal(err)
	}

	// --- Build both indexes over the clean keys -------------------------
	fanout := n / 100
	rmiIdx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: fanout})
	if err != nil {
		log.Fatal(err)
	}
	bt, err := cdfpoison.BuildBTree(32, ks.Keys())
	if err != nil {
		log.Fatal(err)
	}

	measure := func(name string, lookup func(k int64) int) {
		var probes int
		start := time.Now()
		for _, k := range ks.Keys() {
			probes += lookup(k)
		}
		elapsed := time.Since(start)
		fmt.Printf("  %-22s %6.2f probes/lookup   %6.0f ns/lookup\n",
			name, float64(probes)/float64(n), float64(elapsed.Nanoseconds())/float64(n))
	}

	fmt.Println("clean data:")
	measure("two-stage RMI", func(k int64) int { return rmiIdx.Lookup(k).Probes })
	measure("B-Tree (degree 32)", func(k int64) int { _, p := bt.Get(k); return p })
	fmt.Printf("  RMI model storage: %d bytes; B-Tree height: %d\n\n",
		rmiIdx.Stats().MemoryBytes, bt.Height())

	// --- Poison the RMI's training data ---------------------------------
	fmt.Println("poisoning 10% of the training data (Algorithm 2)…")
	atk, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
		NumModels: fanout, Percent: 10, Alpha: 3, MaxMoves: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L_RMI ratio: %.1f×\n\n", res(atk))

	poisonedRMI, err := cdfpoison.BuildRMI(ks.Union(atk.Poison), cdfpoison.RMIConfig{Fanout: fanout})
	if err != nil {
		log.Fatal(err)
	}
	// The B-Tree also absorbs the poison keys — but its balanced structure
	// is immune to data-distribution attacks: height and probes barely move.
	btPois, err := cdfpoison.BuildBTree(32, append(append([]int64{}, ks.Keys()...), atk.Poison.Keys()...))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("poisoned data (lookups still on the legitimate keys):")
	measure("two-stage RMI", func(k int64) int { return poisonedRMI.Lookup(k).Probes })
	measure("B-Tree (degree 32)", func(k int64) int { _, p := btPois.Get(k); return p })
	fmt.Printf("  RMI avg search window: %.1f → %.1f slots\n",
		rmiIdx.Stats().AvgWindow, poisonedRMI.Stats().AvgWindow)
	fmt.Println("\n→ the learned index pays for adapting to the data; the B-Tree does not.")
}

func res(a cdfpoison.RMIAttackResult) float64 { return a.RMIRatio() }
