// Black-box attack: the paper's Section VI future-work scenario, executable.
//
// The adversary knows the training keys (the standard poisoning assumption)
// but NOT the deployed index's parameters. Because second-stage models are
// linear, one position-prediction probe per known key recovers the entire
// second stage — fanout, partition boundaries, and every (w, b) — after
// which the white-box attack applies unchanged.
//
// Also demonstrates the deletion adversary (GreedyRemoval), the other
// future-work extension.
//
//	go run ./examples/blackbox_attack
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(21)
	ks, err := cdfpoison.UniformKeys(rng, 5_000, 100_000)
	if err != nil {
		log.Fatal(err)
	}

	// The victim deploys a two-stage RMI. The attacker sees only an oracle.
	idx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 50})
	if err != nil {
		log.Fatal(err)
	}
	var oracle cdfpoison.PredictionOracle = idx

	// --- Step 1: parameter inference ------------------------------------
	inf, err := cdfpoison.InferSecondStage(oracle, ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference: recovered %d second-stage models with %d probes (one per key)\n",
		inf.NumModels(), inf.Probes)
	s := inf.Segments[0]
	fmt.Printf("model 0 serves keys[%d..%d]: rank ≈ %.6g·key %+.6g\n",
		s.Lo, s.Hi, s.Line.W, s.Line.B)

	// --- Step 2: mount the attack on the inferred architecture ----------
	bb, err := cdfpoison.BlackBoxRMIAttack(oracle, ks, cdfpoison.RMIAttackOptions{
		Percent: 10, Alpha: 3, MaxMoves: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblack-box attack: %d poison keys, L_RMI ratio %.1f×\n",
		bb.Attack.Poison.Len(), bb.Attack.RMIRatio())

	// Compare with the white-box attacker who was handed the parameters.
	wb, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
		NumModels: 50, Percent: 10, Alpha: 3, MaxMoves: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	same := bb.Attack.Poison.Equal(wb.Poison)
	fmt.Printf("white-box attack:  %d poison keys, L_RMI ratio %.1f× — identical keys: %v\n",
		wb.Poison.Len(), wb.RMIRatio(), same)

	// --- Bonus: the deletion adversary ----------------------------------
	fmt.Println("\ndeletion adversary (removes up to 5% of the keys):")
	rm, err := cdfpoison.GreedyRemoval(ks, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("removed %d keys, regression MSE %.4g → %.4g (ratio %.2f×)\n",
		len(rm.Removed), rm.CleanLoss, rm.FinalLoss(), rm.RatioLoss())
}
