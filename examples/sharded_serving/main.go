// Sharded serving under attack: the production-shaped scenario.
//
// A range-partitioned sharded index (router fitted over the initial key
// CDF, independent updatable shards) serves a skewed read/write workload
// while an adversary drip-feeds optimal poison between maintenance cycles.
// The aggregate loss ratio understates the damage — the attacker's poison
// cluster lands inside ONE shard's range, so the per-shard report shows
// where the pain concentrates, and the same keys inflate shard imbalance.
//
//	go run ./examples/sharded_serving
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(7)
	const n = 3_000
	ks, err := cdfpoison.UniformKeys(rng, n, n*40)
	if err != nil {
		log.Fatal(err)
	}

	// --- The victim, standalone: any backend, one interface --------------
	idx, err := cdfpoison.NewShardedIndex(ks, 4, cdfpoison.RetrainManually())
	if err != nil {
		log.Fatal(err)
	}
	var backend cdfpoison.IndexBackend = idx // the contract every scenario drives
	fmt.Printf("sharded index: %d shards over %d keys, imbalance %.2f\n",
		idx.NumShards(), backend.Len(), idx.Imbalance())

	// A deterministic zipf workload stream (90 percent reads over ranks).
	gen, err := cdfpoison.NewWorkloadGenerator(cdfpoison.ZipfWorkload(1.1, 90), ks, n*40, 11)
	if err != nil {
		log.Fatal(err)
	}
	var probes int64
	reads := 0
	for _, op := range gen.Ops(2_000) {
		if op.Read {
			r := backend.Lookup(op.Key)
			probes += int64(r.Probes)
			reads++
		} else {
			backend.Insert(op.Key)
		}
	}
	fmt.Printf("clean serving: %.2f probes per read over %d zipf reads\n\n",
		float64(probes)/float64(reads), reads)

	// --- The scenario: poisoning under load ------------------------------
	fmt.Println("ServeAttack: 2% poison per epoch against the 4-shard index…")
	res, err := cdfpoison.ServeAttack(ks, cdfpoison.ServeOptions{
		Epochs:      5,
		OpsPerEpoch: 300,
		EpochBudget: n * 2 / 100,
		Shards:      4,
		Policy:      cdfpoison.RetrainManually(),
		Workload:    cdfpoison.ZipfWorkload(1.1, 90),
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%5s %8s %9s %10s %10s %11s\n",
		"epoch", "ratio", "imbalance", "clean_prob", "pois_prob", "worst_shard")
	for _, e := range res.Epochs {
		worst := 1.0
		worstShard := 0
		for _, s := range e.Shards {
			if s.RatioLoss > worst {
				worst, worstShard = s.RatioLoss, s.Shard
			}
		}
		fmt.Printf("%5d %7.2fx %9.2f %10.2f %10.2f %8.2fx s%d\n",
			e.Epoch, e.RatioLoss, e.Imbalance, e.CleanProbes, e.PoisonedProbes,
			worst, worstShard)
	}
	fmt.Printf("\naggregate max ratio %.1f× — but the worst SHARD hit %.1f×:\n",
		res.MaxRatio(), res.MaxShardRatio())
	fmt.Println("sharding dilutes the average and concentrates the damage;")
	fmt.Println("per-shard reporting is how a serving operator would actually see it.")
}
