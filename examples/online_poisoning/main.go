// Online poisoning: attacking an UPDATABLE learned index across retrains.
//
// The paper's attack poisons a static index once, before training. This
// example mounts the dynamic-adversary variant its successors study: the
// victim runs a delta-buffer index that merges and retrains on a policy,
// honest clients keep inserting keys, and the attacker drip-feeds a small
// poison budget every epoch — each batch chosen optimally (Algorithm 1)
// against the index's current content. A clean counterfactual index running
// the same policy shows what the victim's loss and lookup costs would have
// been, so every epoch reports the attacker's amplification.
//
//	go run ./examples/online_poisoning
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	// The victim's initial data: 2,000 uniform keys — the index's friendly
	// case — plus an honest insert stream of 40 keys per epoch.
	rng := cdfpoison.NewRNG(7)
	initial, err := cdfpoison.UniformKeys(rng, 2000, 80_000)
	if err != nil {
		log.Fatal(err)
	}
	const epochs = 6
	arrivals := make([][]int64, epochs)
	for e := range arrivals {
		for i := 0; i < 40; i++ {
			arrivals[e] = append(arrivals[e], rng.Int63n(80_000))
		}
	}

	// The victim retrains whenever 128 inserts have accumulated in the
	// delta buffer; the attacker injects 2% of the data per epoch.
	res, err := cdfpoison.OnlinePoisonAttack(initial, cdfpoison.OnlineOptions{
		Epochs:      epochs,
		EpochBudget: 40,
		Policy:      cdfpoison.RetrainAtBufferSize(128),
		Arrivals:    arrivals,
	}, cdfpoison.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  injected  retrains  buffer  loss-ratio  probes clean→poisoned")
	for _, e := range res.Epochs {
		fmt.Printf("%5d  %8d  %8d  %6d  %9.2f×  %6.2f → %.2f\n",
			e.Epoch, e.Injected, e.Retrains, e.BufferLen, e.RatioLoss,
			e.CleanProbes, e.PoisonedProbes)
	}
	fmt.Printf("\n%d poison keys total; final amplification %.1f× (peak %.1f×)\n",
		res.Poison.Len(), res.FinalRatio(), res.MaxRatio())

	// The same scenario against a write-count maintenance schedule: the
	// attacker's own writes tick the retrain counter, so the adversary
	// controls WHEN the model absorbs the poison.
	res2, err := cdfpoison.OnlinePoisonAttack(initial, cdfpoison.OnlineOptions{
		Epochs:      epochs,
		EpochBudget: 40,
		Policy:      cdfpoison.RetrainEvery(100),
		Arrivals:    arrivals,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under retrain-every-100-writes: %d retrains (vs %d), final ratio %.1f×\n",
		res2.Retrains, res.Retrains, res2.FinalRatio())
}
