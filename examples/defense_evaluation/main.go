// Defense evaluation: the paper's Section VI discussion, made executable.
//
// Three defenses face the greedy CDF poisoning attack:
//
//  1. range filtering      — evaded by construction (interior keys only),
//
//  2. density flagging     — poison hides inside dense legitimate regions,
//
//  3. TRIM (Jagielski et al.) adapted to CDFs — per-iteration re-ranking
//     makes it expensive, and clustered poison survives or takes
//     legitimate keys down with it.
//
//     go run ./examples/defense_evaluation
package main

import (
	"fmt"
	"log"
	"time"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(11)
	clean, err := cdfpoison.UniformKeys(rng, 1_000, 20_000)
	if err != nil {
		log.Fatal(err)
	}
	atk, err := cdfpoison.GreedyMultiPoint(clean, 100) // 10% poisoning
	if err != nil {
		log.Fatal(err)
	}
	poison, err := cdfpoison.NewKeySetStrict(atk.Poison)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack: %d poison keys, ratio loss %.1f×\n\n", poison.Len(), atk.RatioLoss())

	// --- Defense 1: range filter ---------------------------------------
	_, removed := cdfpoison.RangeFilter(atk.Poisoned, clean.Min(), clean.Max())
	fmt.Printf("range filter:    removed %d keys (attack uses interior keys only)\n", removed.Len())

	// --- Defense 2: density flagging ------------------------------------
	flagged := cdfpoison.DensityFlagger(atk.Poisoned, 5, 2.5)
	hit := 0
	for _, k := range flagged.Keys() {
		if poison.Contains(k) {
			hit++
		}
	}
	fmt.Printf("density flagger: flagged %d keys, %d of them actually poison (recall %.0f%%)\n",
		flagged.Len(), hit, 100*float64(hit)/float64(poison.Len()))

	// --- Defense 3: TRIM on CDF -----------------------------------------
	start := time.Now()
	tr, err := cdfpoison.TrimDefense(atk.Poisoned, clean.Len(), cdfpoison.TrimOptions{
		Restarts: 2, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	ev, err := cdfpoison.EvaluateDefense(clean, poison, tr.Removed, tr.Kept)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TRIM:            %d iterations in %v\n", tr.Iterations, elapsed.Round(time.Millisecond))
	fmt.Printf("                 precision %.2f, recall %.2f\n", ev.Precision, ev.Recall)
	fmt.Printf("                 legitimate keys sacrificed: %d\n", ev.FalsePositives)

	// What did the defender actually win? Compare the model trained on the
	// kept set against the clean baseline and the undefended poisoned set.
	keptModel, err := cdfpoison.FitCDF(tr.Kept)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMSE: clean %.4g | poisoned %.4g | after TRIM %.4g\n",
		ev.CleanLossBefore, atk.FinalLoss(), keptModel.Loss)
	if keptModel.Loss > 1.5*ev.CleanLossBefore {
		fmt.Println("→ the attack largely survives the defense, as the paper predicts.")
	} else {
		fmt.Println("→ TRIM recovered most of the damage on this instance.")
	}
}
