// Regression poisoning deep-dive: the single-model narrative of the paper's
// Section IV, on one small key set you can read in full.
//
// It reproduces, end to end:
//
//   - the compound effect of one poisoning key (Figure 2),
//
//   - the loss landscape over every feasible poisoning location and the
//     per-gap convexity that makes the O(n) attack possible (Figure 3),
//
//   - the greedy multi-point attack and its loss trajectory (Figure 4).
//
//     go run ./examples/regression_poisoning
package main

import (
	"fmt"
	"log"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(7)
	ks, err := cdfpoison.UniformKeys(rng, 20, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legitimate keys (n=%d): %v\n\n", ks.Len(), ks.Keys())

	// --- Single-point attack (Figure 2) -------------------------------
	sp, err := cdfpoison.OptimalSinglePoint(ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal single poisoning key: %d (takes rank %d)\n", sp.Key, sp.Rank)
	fmt.Printf("MSE %.4f → %.4f (%.2f×)\n", sp.CleanLoss, sp.PoisonedLoss, sp.RatioLoss())
	fmt.Printf("candidates evaluated: %d (only gap endpoints, by Theorem 2)\n\n", sp.Candidates)

	// Cross-check against the brute-force oracle.
	bf, err := cdfpoison.BruteForceSinglePoint(ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force agrees: best loss %.4f over %d candidates\n\n",
		bf.PoisonedLoss, bf.Candidates)

	// --- Loss landscape (Figure 3) -------------------------------------
	seq, clean, err := cdfpoison.LossSequence(ks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loss sequence over %d feasible locations (clean loss %.4f):\n", len(seq), clean)
	// Print a compact landscape: one row per gap with its best endpoint.
	type gapBest struct {
		lo, hi int64
		best   cdfpoison.LossPoint
	}
	var gaps []gapBest
	for _, p := range seq {
		if len(gaps) > 0 && p.Key == gaps[len(gaps)-1].hi+1 {
			g := &gaps[len(gaps)-1]
			g.hi = p.Key
			if p.Loss > g.best.Loss {
				g.best = p
			}
			continue
		}
		gaps = append(gaps, gapBest{lo: p.Key, hi: p.Key, best: p})
	}
	for _, g := range gaps {
		marker := ""
		if g.best.Key == sp.Key {
			marker = "   ← chosen"
		}
		fmt.Printf("  gap [%3d..%3d]: max loss %.4f at key %d%s\n",
			g.lo, g.hi, g.best.Loss, g.best.Key, marker)
	}

	// --- Greedy multi-point attack (Figure 4) ---------------------------
	fmt.Println("\ngreedy multi-point attack, budget 15% (3 keys):")
	atk, err := cdfpoison.GreedyMultiPoint(ks, 3)
	if err != nil {
		log.Fatal(err)
	}
	loss := atk.CleanLoss
	for i, p := range atk.Poison {
		fmt.Printf("  insert %3d: MSE %.4f → %.4f\n", p, loss, atk.Trajectory[i])
		loss = atk.Trajectory[i]
	}
	fmt.Printf("final ratio loss: %.2f×\n", atk.RatioLoss())
	fmt.Printf("poisoned key set: %v\n", atk.Poisoned.Keys())
}
