// Concurrent serving: the goroutine-concurrent plane and its tick oracle.
//
// The serving plane runs reader goroutines that answer lookups lock-free
// off immutable snapshots published through an atomic version chain, while
// a single writer ingests the operation stream and drives retrains in a
// true background goroutine. Its defining property is scheduler
// equivalence: every per-epoch metric — tail-latency percentiles in
// probes, stale-read fractions, content loss, churn counters — is
// byte-identical to the single-threaded tick scheduler, for any reader
// count. Concurrency buys wall-clock throughput and nothing else, so a
// poisoned tail (p99/p999 inflation) is attacker-caused by construction,
// never a scheduling artifact.
//
//	go run ./examples/concurrent_serving
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"

	"cdfpoison"
)

func main() {
	rng := cdfpoison.NewRNG(7)
	const n = 1_500
	ks, err := cdfpoison.UniformKeys(rng, n, n*40)
	if err != nil {
		log.Fatal(err)
	}

	scenario := cdfpoison.ServingScenarioOptions{
		Epochs:      4,
		OpsPerEpoch: 300,
		EpochBudget: 30, // poison keys per epoch; 0 below runs the clean baseline
		Workload:    cdfpoison.ZipfWorkload(1.1, 90),
		Domain:      n * 40,
		Seed:        11,
		Cost:        cdfpoison.RebuildCostModel{Fixed: 30},
		Oracle:      cdfpoison.GreedyPoisonOracle(),
	}
	backend := func() cdfpoison.IndexBackend {
		b, err := cdfpoison.NewShardedIndex(ks, 4, cdfpoison.RetrainAtBufferSize(24))
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	// --- Scheduler equivalence: tick oracle vs concurrent plane ----------
	tick, err := cdfpoison.ServeScenarioTick(backend(), scenario)
	if err != nil {
		log.Fatal(err)
	}
	conc, err := cdfpoison.ServeScenarioConcurrent(context.Background(), backend(), scenario,
		cdfpoison.ServingPlaneOptions{Readers: 4, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tick oracle == 4-reader concurrent plane: %v\n\n", reflect.DeepEqual(tick, conc))

	// --- The attack, read off the poisoned run's tail --------------------
	clean := scenario
	clean.EpochBudget = 0
	base, err := cdfpoison.ServeScenarioConcurrent(context.Background(), backend(), clean,
		cdfpoison.ServingPlaneOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("epoch  clean_p99  clean_p999  poison_p99  poison_p999  stale_frac  injected")
	for i, p := range conc {
		c := base[i]
		fmt.Printf("%5d %10d %11d %11d %12d %11.3f %9d\n",
			p.Epoch, c.P99, c.P999, p.P99, p.P999, p.StaleFrac, p.Injected)
	}
	last, cleanLast := conc[len(conc)-1], base[len(base)-1]
	fmt.Printf("\nfinal content-loss ratio %.2f×, histogram checksums %016x (clean) vs %016x (poisoned)\n",
		last.ContentLoss/cleanLast.ContentLoss, cleanLast.HistChecksum, last.HistChecksum)
}
