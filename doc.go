// Package cdfpoison is a complete Go implementation of the poisoning
// attacks on learned index structures introduced by Kornaropoulos, Ren, and
// Tamassia, "The Price of Tailoring the Index to Your Data: Poisoning
// Attacks on Learned Index Structures" (SIGMOD 2022, arXiv:2008.00297),
// together with every substrate the paper's evaluation needs: linear
// regression on CDFs, a two-stage recursive model index (RMI) with probe
// accounting, a B-Tree baseline, dataset generators for the paper's
// synthetic and real-world workloads, and a TRIM-style defense adapted to
// CDF training data.
//
// # Background
//
// A learned index models the lookup "key → position in the sorted key
// array" as a regression on the key set's cumulative distribution function
// (CDF). Because the model is tailored to the data, an adversary who can
// contribute data before the index is (re)built can craft keys whose
// insertion degrades the model for everyone: inserting a single key shifts
// the rank of every larger key, so a poisoning key has a global, compound
// effect on the training set — a structurally different setting from
// classic regression poisoning.
//
// # Quick start
//
//	ks, _ := cdfpoison.NewKeySet(myKeys)
//	model, _ := cdfpoison.FitCDF(ks)              // the index's regression
//	atk, _ := cdfpoison.GreedyMultiPoint(ks, 50)  // 50 optimal poison keys
//	fmt.Println(atk.RatioLoss())                  // error amplification
//
// Attacking a full two-stage RMI:
//
//	res, _ := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
//	    NumModels: 100, Percent: 10, Alpha: 3,
//	})
//	fmt.Println(res.RMIRatio())
//
// Building and querying the index substrate:
//
//	idx, _ := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 100})
//	r := idx.Lookup(key)    // r.Found, r.Pos, r.Probes
//
// Attacking an UPDATABLE index online — drip-feeding poison between retrain
// cycles of a delta-buffer index (the dynamic-adversary setting the paper's
// successors study):
//
//	res, _ := cdfpoison.OnlinePoisonAttack(ks, cdfpoison.OnlineOptions{
//	    Epochs: 8, EpochBudget: 50, Policy: cdfpoison.RetrainAtBufferSize(256),
//	})
//	for _, e := range res.Epochs {
//	    fmt.Println(e.Epoch, e.RatioLoss, e.PoisonedProbes)
//	}
//
// Attacking a SHARDED serving index under honest load — the serving-layer
// scenario (DESIGN.md §6): every substrate serves through the IndexBackend
// contract, and ServeAttack drives poison into a range-partitioned index
// (NewShardedIndex) while a deterministic workload mix reads and writes it:
//
//	res, _ := cdfpoison.ServeAttack(ks, cdfpoison.ServeOptions{
//	    Epochs: 6, OpsPerEpoch: 500, EpochBudget: 50, Shards: 4,
//	    Policy:   cdfpoison.RetrainManually(),
//	    Workload: cdfpoison.ZipfWorkload(1.1, 90),
//	})
//	fmt.Println(res.MaxRatio(), res.MaxShardRatio()) // aggregate vs worst shard
//
// Attacking the REBUILD PIPELINE itself — the retrain-churn scenario
// (DESIGN.md §7): reads are served through snapshot isolation, each
// rebuild costs logical ticks before it publishes, and ChurnAttack aims
// its budget at the shard where each key buys the most rebuild work:
//
//	res, _ := cdfpoison.ChurnAttack(ks, cdfpoison.ChurnOptions{
//	    Epochs: 6, OpsPerEpoch: 500, EpochBudget: 50, Shards: 4,
//	    Policy:   cdfpoison.RetrainAtBufferSize(64),
//	    Workload: cdfpoison.ZipfWorkload(1.1, 90),
//	    Cost:     cdfpoison.RebuildCostModel{Fixed: 40},
//	})
//	fmt.Println(res.MaxStaleFrac(), res.VictimChurn.MaxLatencyTicks)
//
// These snippets are compiled and output-checked as Example functions in
// api_example_test.go.
//
// # Parallel execution
//
// Attack entry points accept execution options. WithParallelism(n) runs the
// hot loops — per-gap candidate evaluation in Algorithm 1, per-segment
// second-stage attacks in Algorithm 2 — on a bounded worker pool (n == 1
// sequential, n > 1 exactly n workers, n <= 0 one worker per core), and
// WithCancellation(ctx) aborts mid-attack when ctx is cancelled:
//
//	atk, _ := cdfpoison.GreedyMultiPoint(ks, 50, cdfpoison.WithParallelism(0))
//	res, _ := cdfpoison.RMIAttack(ks, opts, cdfpoison.WithParallelism(8))
//
// The determinism contract: parallelism never changes results. Worker pools
// distribute tasks dynamically but reduce results in task-index order
// (internal/engine), so any worker count produces output byte-identical to
// the sequential run — equivalence tests enforce this for every
// parallelized path. The cmd/lisbench and cmd/lispoison tools expose the
// same knob as -workers; the figure sweeps additionally fan out whole
// experiment cells via internal/bench's Options.Workers.
//
// See README.md for the attack catalog and how to run the figure sweeps,
// the examples directory for complete programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the paper-vs-measured record of every
// reproduced figure.
package cdfpoison
