// Benchmarks regenerating every figure of the paper's evaluation (see
// DESIGN.md §3 for the experiment index) plus micro-benchmarks of the
// primitives. Figure benches run at quick scale so `go test -bench=.`
// finishes in minutes; `cmd/lisbench` runs the full default-scale sweeps
// and writes CSV/ASCII output.
//
// Custom metrics: figure benches report the headline ratio losses via
// b.ReportMetric (suffix "ratio"), so the measured amplification appears in
// the benchmark output next to ns/op.
package cdfpoison_test

import (
	"testing"

	"cdfpoison"
	"cdfpoison/internal/bench"
)

func quickOpts(seed uint64) bench.Options {
	return bench.Options{Scale: bench.ScaleQuick, Seed: seed}
}

// BenchmarkFig2SinglePointCompound regenerates Figure 2: one optimal
// poisoning key against a 10-key uniform CDF.
func BenchmarkFig2SinglePointCompound(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig2(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig3LossSequence regenerates Figure 3: the loss sequence and its
// discrete derivative over the whole key space.
func BenchmarkFig3LossSequence(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig3(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		points = float64(len(res.Sequence))
	}
	b.ReportMetric(points, "candidates")
}

// BenchmarkFig4Greedy90Keys regenerates Figure 4: 10 greedy poisoning keys
// against 90 uniform keys (paper: 7.4× error increase).
func BenchmarkFig4Greedy90Keys(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig4(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkFig5UniformRegression regenerates Figure 5: the multi-point
// poisoning sweep over uniform key sets (paper: ratios up to ~100×).
func BenchmarkFig5UniformRegression(b *testing.B) {
	var maxMedian float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RegressionGrid(bench.DistUniform, quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		maxMedian = res.MaxMedianRatio()
	}
	b.ReportMetric(maxMedian, "max-median-ratio")
}

// BenchmarkFig8NormalRegression regenerates Figure 8: the same sweep under
// the normal key distribution (paper: ratios up to ~8×).
func BenchmarkFig8NormalRegression(b *testing.B) {
	var maxMedian float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RegressionGrid(bench.DistNormal, quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		maxMedian = res.MaxMedianRatio()
	}
	b.ReportMetric(maxMedian, "max-median-ratio")
}

// BenchmarkFig6RMISynthetic regenerates Figure 6: Algorithm 2 against
// uniform and log-normal RMIs (paper: RMI ratio up to 300×, individual
// models up to 3000×).
func BenchmarkFig6RMISynthetic(b *testing.B) {
	var rmiMax, modelMax float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RMISynthetic(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		rmiMax = res.MaxRMIRatio("")
		modelMax = res.MaxModelRatioOverall("")
	}
	b.ReportMetric(rmiMax, "max-rmi-ratio")
	b.ReportMetric(modelMax, "max-model-ratio")
}

// BenchmarkFig7RMIRealData regenerates Figure 7: the RMI attack on the two
// simulated real-world datasets (paper: RMI ratios between 4× and 24×).
func BenchmarkFig7RMIRealData(b *testing.B) {
	for _, ds := range []bench.RealDataset{bench.DatasetSalaries, bench.DatasetOSM} {
		b.Run(string(ds), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RealData(ds, quickOpts(42))
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.MaxRMIRatio()
			}
			b.ReportMetric(ratio, "max-rmi-ratio")
		})
	}
}

// BenchmarkExtLookupDegradation measures Extension A: probe-count and
// search-window degradation of the RMI after the attack.
func BenchmarkExtLookupDegradation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.LookupDegradation(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		gain = cells[0].PoisonedAvgWindow / cells[0].CleanAvgWindow
	}
	b.ReportMetric(gain, "window-gain")
}

// BenchmarkExtTrimDefense measures Extension C: the TRIM defense against the
// CDF attack.
func BenchmarkExtTrimDefense(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.TrimDefense(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		recall = cells[len(cells)-1].Recall
	}
	b.ReportMetric(recall, "recall")
}

// BenchmarkOnlineSweep regenerates the dynamic-index online poisoning sweep
// (lisbench -fig online): loss ratio and probe cost vs. epoch across
// retrain policies and per-epoch budgets.
func BenchmarkOnlineSweep(b *testing.B) {
	var maxFinal float64
	for i := 0; i < b.N; i++ {
		res, err := bench.OnlineSweep(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		maxFinal = res.MaxFinalRatio()
	}
	b.ReportMetric(maxFinal, "max-final-ratio")
}

// BenchmarkAblationEndpointsVsBrute times the Theorem 2 endpoint enumeration
// against the full-domain sweep on identical data (Ablation 1).
func BenchmarkAblationEndpointsVsBrute(b *testing.B) {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 2000, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("endpoints", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cdfpoison.OptimalSinglePoint(ks); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cdfpoison.BruteForceSinglePoint(ks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVolumeAllocation compares Algorithm 2's greedy exchanges
// with the fixed uniform split (Ablation 2).
func BenchmarkAblationVolumeAllocation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := bench.VolumeAllocation(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		gain = res.GreedyRatio / res.UniformRatio
	}
	b.ReportMetric(gain, "exchange-gain")
}

// BenchmarkAblationAlpha sweeps the per-model poisoning threshold
// (Ablation 3).
func BenchmarkAblationAlpha(b *testing.B) {
	var unbounded float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.AlphaSweep(quickOpts(42))
		if err != nil {
			b.Fatal(err)
		}
		unbounded = cells[len(cells)-1].RMIRatio
	}
	b.ReportMetric(unbounded, "ratio-at-alpha-inf")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives.
// ---------------------------------------------------------------------------

func benchKeys(b *testing.B, n int, density float64) cdfpoison.KeySet {
	b.Helper()
	rng := cdfpoison.NewRNG(uint64(n))
	ks, err := cdfpoison.UniformKeys(rng, n, int64(float64(n)/density))
	if err != nil {
		b.Fatal(err)
	}
	return ks
}

func BenchmarkFitCDF(b *testing.B) {
	ks := benchKeys(b, 100_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cdfpoison.FitCDF(ks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSinglePointAttack(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		ks := benchKeys(b, n, 0.2)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cdfpoison.OptimalSinglePoint(ks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedyAttack10pct(b *testing.B) {
	ks := benchKeys(b, 2_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cdfpoison.GreedyMultiPoint(ks, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMIBuild(b *testing.B) {
	ks := benchKeys(b, 100_000, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMILookup(b *testing.B) {
	ks := benchKeys(b, 100_000, 0.2)
	idx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 1000})
	if err != nil {
		b.Fatal(err)
	}
	raw := ks.Keys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := idx.Lookup(raw[i%len(raw)])
		if !r.Found {
			b.Fatal("stored key not found")
		}
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	ks := benchKeys(b, 100_000, 0.2)
	bt, err := cdfpoison.BuildBTree(32, ks.Keys())
	if err != nil {
		b.Fatal(err)
	}
	raw := ks.Keys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, _ := bt.Get(raw[i%len(raw)])
		if !found {
			b.Fatal("stored key not found")
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt, err := cdfpoison.NewBTree(32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(int64(i))
	}
}

func BenchmarkRemovalAttack(b *testing.B) {
	ks := benchKeys(b, 5_000, 0.2)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		g, err := cdfpoison.GreedyRemoval(ks, 250)
		if err != nil {
			b.Fatal(err)
		}
		ratio = g.RatioLoss()
	}
	b.ReportMetric(ratio, "ratio")
}

func BenchmarkBlackBoxInference(b *testing.B) {
	ks := benchKeys(b, 10_000, 0.2)
	idx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf, err := cdfpoison.InferSecondStage(idx, ks)
		if err != nil {
			b.Fatal(err)
		}
		if inf.NumModels() != 100 {
			b.Fatalf("inferred %d models", inf.NumModels())
		}
	}
}

func BenchmarkTrimDefense1k(b *testing.B) {
	rng := cdfpoison.NewRNG(42)
	clean, err := cdfpoison.UniformKeys(rng, 1000, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	atk, err := cdfpoison.GreedyMultiPoint(clean, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cdfpoison.TrimDefense(atk.Poisoned, 1000, cdfpoison.TrimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1_000_000:
		return "n1M"
	case n >= 100_000:
		return "n100k"
	case n >= 10_000:
		return "n10k"
	default:
		return "n1k"
	}
}
