module cdfpoison

go 1.22
