package cdfpoison_test

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesVetAndRun keeps examples/ honest: every example program must
// pass go vet and run to completion. Examples are the only code paths no
// other test compiles, so without this they rot silently the first time an
// API they use changes shape.
func TestExamplesVetAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test spawns the go tool; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dirs, err := filepath.Glob(filepath.Join("examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			pkg := "./" + filepath.ToSlash(dir)
			if out, err := exec.Command(goBin, "vet", pkg).CombinedOutput(); err != nil {
				t.Fatalf("go vet %s: %v\n%s", pkg, err, out)
			}
			out, err := exec.Command(goBin, "run", pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", pkg, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", pkg)
			}
		})
	}
}
