package cdfpoison_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRef matches Markdown-file references in Go source comments
// ("DESIGN.md", "EXPERIMENTS.md §3", "see README.md", …).
var mdRef = regexp.MustCompile(`\b([A-Za-z][A-Za-z0-9_-]*\.md)\b`)

// TestDocsReferencesExist is the docs gate: every .md file referenced from
// a *.go comment must exist at the repository root. This is what rotted
// for two PRs — code cited DESIGN.md and EXPERIMENTS.md before they were
// written — and what this gate makes impossible from now on.
func TestDocsReferencesExist(t *testing.T) {
	refs := map[string][]string{} // md file -> referencing go files
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdRef.FindAllStringSubmatch(string(data), -1) {
			if !contains(refs[m[1]], path) {
				refs[m[1]] = append(refs[m[1]], path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no .md references found in any .go file — the scanner is broken")
	}
	for md, sources := range refs {
		if _, err := os.Stat(md); err != nil {
			t.Errorf("%s is referenced from %v but does not exist at the repo root", md, sources)
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestDocsCoverCitedSections: references from code point at specific
// sections; renaming or dropping those sections must fail here, not rot
// silently.
func TestDocsCoverCitedSections(t *testing.T) {
	for file, sections := range map[string][]string{
		// cmd/lisbench/main.go and bench_test.go cite §3 "Scaling policy";
		// internal/bench/ext.go cites the Extension A note; api.go and
		// doc.go lean on the determinism contract and package map.
		"DESIGN.md": {
			"§1 Package map",
			"§2 Determinism contract",
			"§3 Scaling policy",
			"Extension A",
			"§5 The online scenario",
			// api.go, internal/index, internal/shard, and the serve
			// runners cite the serving layer's interface and router
			// invariants.
			"§6 Serving layer",
			"Shard router invariants",
			// The incremental attack kernel (internal/regression,
			// internal/core) and the perf gate (internal/bench/perf.go,
			// cmd/lisbench) cite these subsections.
			"Incremental kernel invariants",
			"Allocation budget",
			// internal/index (planes, cost models, pipeline), the churn
			// scenario (internal/core/churn.go), and api.go cite §7.
			"§7 Read/write/admin planes and the retrain pipeline",
			// internal/serve (version chain, scheduler equivalence,
			// histograms), index.Pipeline.ReadRevision, and api.go cite §8.
			"§8 Concurrent serving plane",
			"Scheduler equivalence",
			// internal/alex (gapped array, struct accounting), the cascade
			// scenario (internal/core/cascade.go), and api.go cite §9.
			"§9 Gapped-array backend",
			"cascade attack",
			// internal/robust (fitter contract), internal/defense (policy
			// chain), core.DefenseSpec, and the defense sweep cite §10.
			"§10 Defense plane",
			"Robust fitters",
			"Pareto harness",
			// The closed-form oracle (internal/regression/closedform.go),
			// the pruned scan (internal/core/pruned.go), api.go, and the
			// perf ablation cells cite §11.
			"§11 Closed-form oracle & pruned scan",
			// The batch probe kernel (internal/index/batch.go, the backend
			// kernels, core.probeEval, api.go) and the eval perf cells
			// cite §12.
			"§12 Batch probe kernel invariants",
		},
		// doc.go promises the paper-vs-measured record; api.go cites Ext. F;
		// bench/perf.go and the CI gate cite the perf trajectory.
		"EXPERIMENTS.md": {
			"paper vs. measured",
			"Online scenario",
			"Serving scenario",
			"Retrain-churn scenario",
			"-fig serve",
			"serve.csv",
			"-fig churn",
			"churn.csv",
			"| F |",
			"-seed 42",
			// BENCH_PR3.json, BENCH_PR5.json, and BENCH_PR6.json stay
			// recorded as previous trajectory points.
			"BENCH_PR3.json",
			"BENCH_PR5.json",
			"BENCH_PR6.json",
			// The throughput scenario (internal/bench/throughput.go,
			// cmd/lisbench) cites its CSV fingerprint section.
			"Throughput scenario",
			"-fig throughput",
			"throughput.csv",
			// The split-cascade scenario (internal/bench/cascade.go,
			// cmd/lisbench) cites its CSV fingerprint section; BENCH_PR7.json
			// stays recorded as a previous trajectory point.
			"Split-cascade scenario",
			"-fig cascade",
			"cascade.csv",
			"BENCH_PR7.json",
			// The defense sweep (internal/bench/defense.go, cmd/lisbench)
			// cites its fingerprint section; BENCH_PR8.json stays recorded
			// as a previous trajectory point.
			"Defense Pareto sweep",
			"-fig defense",
			"defense.csv",
			"BENCH_PR8.json",
			// BENCH_PR9.json stays recorded as the previous trajectory
			// point; BENCH_PR10.json (bench/perf.go, cmd/lisbench) is the
			// live baseline the CI perf gate compares against, re-recorded
			// for the batch probe kernel and its eval cells.
			"BENCH_PR9.json",
			"BENCH_PR10.json",
			"Batch probe kernel",
		},
		// doc.go points readers at the catalog and sweep instructions.
		"README.md": {
			"Attack catalog",
			"-workers",
			"OnlinePoisonAttack",
			"ServeAttack",
			"ChurnAttack",
			"NewShardedIndex",
			"NewRetrainPipeline",
			"ServeScenarioConcurrent",
			"figure sweeps",
			// The gapped-array backend and its structural attack (api.go,
			// examples/alex_cascade) point readers at the catalog entry.
			"CascadeAttack",
			"NewAlexIndex",
			// The defense plane (api.go, cmd/lispoison defense) points
			// readers at the catalog entry and the defense sweep line.
			"ScenarioDefense",
			"ParseGuardPolicyChain",
			"-fig defense",
			// The batch probe kernel (DESIGN.md §12) points readers at the
			// complexity note and the A/B flag.
			"-no-batch-eval",
		},
	} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		for _, s := range sections {
			if !strings.Contains(string(data), s) {
				t.Errorf("%s no longer contains %q, which code comments cite", file, s)
			}
		}
	}
}
