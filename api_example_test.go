package cdfpoison_test

import (
	"fmt"
	"log"
	"reflect"

	"cdfpoison"
)

// The doc.go quick start, compiled: fit the index's regression, mount the
// greedy attack, report the error amplification.
func Example() {
	ks, err := cdfpoison.NewKeySet([]int64{2, 3, 8, 30, 31, 32, 80, 91, 99, 102})
	if err != nil {
		log.Fatal(err)
	}
	model, err := cdfpoison.FitCDF(ks) // the index's regression
	if err != nil {
		log.Fatal(err)
	}
	atk, err := cdfpoison.GreedyMultiPoint(ks, 2) // 2 optimal poison keys
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean mse %.2f\n", model.Loss)
	fmt.Printf("poison keys %v\n", atk.Poison)
	fmt.Printf("ratio loss %.2f\n", atk.RatioLoss())
	// Output:
	// clean mse 0.63
	// poison keys [7 6]
	// ratio loss 2.26
}

// Attacking a full two-stage RMI (Algorithm 2): greedy volume allocation
// across second-stage models under a per-model threshold.
func ExampleRMIAttack() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
		NumModels: 10, Percent: 10, Alpha: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d/%d keys across %d models\n",
		res.Injected, res.Budget, len(res.Models))
	fmt.Printf("RMI ratio %.1f\n", res.RMIRatio())
	// Output:
	// injected 100/100 keys across 10 models
	// RMI ratio 5.6
}

// Building and querying the index substrate: every stored key is found, and
// the probe count is the implementation-independent lookup cost.
func ExampleBuildRMI() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 100})
	if err != nil {
		log.Fatal(err)
	}
	r := idx.Lookup(ks.At(500))
	fmt.Printf("found=%v pos=%d\n", r.Found, r.Pos)
	// Output:
	// found=true pos=500
}

// Attacking an updatable index online: a per-epoch budget drip-fed between
// retrain cycles of a delta-buffer index.
func ExampleOnlinePoisonAttack() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cdfpoison.OnlinePoisonAttack(ks, cdfpoison.OnlineOptions{
		Epochs:      4,
		EpochBudget: 25,
		Policy:      cdfpoison.RetrainAtBufferSize(50),
	})
	if err != nil {
		log.Fatal(err)
	}
	last := res.Epochs[len(res.Epochs)-1]
	fmt.Printf("epochs %d, poison keys %d, retrains %d\n",
		len(res.Epochs), res.Poison.Len(), res.Retrains)
	fmt.Printf("probe cost %.2f -> %.2f\n", last.CleanProbes, last.PoisonedProbes)
	// Output:
	// epochs 4, poison keys 100, retrains 2
	// probe cost 4.04 -> 5.97
}

// Attacking a sharded serving index under honest load: the aggregate
// ratio dilutes across shards while the hit shard compounds.
func ExampleServeAttack() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cdfpoison.ServeAttack(ks, cdfpoison.ServeOptions{
		Epochs:      4,
		OpsPerEpoch: 200,
		EpochBudget: 25,
		Shards:      4,
		Policy:      cdfpoison.RetrainManually(),
		Workload:    cdfpoison.ZipfWorkload(1.1, 90),
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	last := res.Epochs[len(res.Epochs)-1]
	fmt.Printf("epochs %d, poison keys %d, shards %d\n",
		len(res.Epochs), res.Poison.Len(), res.Shards)
	fmt.Printf("aggregate max %.1fx, worst shard %.1fx, imbalance %.2f\n",
		res.MaxRatio(), res.MaxShardRatio(), last.Imbalance)
	// Output:
	// epochs 4, poison keys 100, shards 4
	// aggregate max 1.2x, worst shard 12.2x, imbalance 1.26
}

// Churning the rebuild pipeline: the attacker aims its whole budget at the
// shard where each key buys the most rebuild work, and the damage shows up
// as stale reads and publish latency rather than probe count alone.
func ExampleChurnAttack() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cdfpoison.ChurnAttack(ks, cdfpoison.ChurnOptions{
		Epochs:      4,
		OpsPerEpoch: 200,
		EpochBudget: 25,
		Shards:      4,
		Policy:      cdfpoison.RetrainAtBufferSize(16),
		Workload:    cdfpoison.ZipfWorkload(1.1, 90),
		Seed:        7,
		Cost:        cdfpoison.RebuildCostModel{Fixed: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epochs %d, poison keys %d, rebuild publishes %d (%d coalesced)\n",
		len(res.Epochs), res.Poison.Len(), res.VictimChurn.Publishes, res.VictimChurn.Coalesced)
	fmt.Printf("max stale fraction %.2f, max publish latency %d ticks (cost 60)\n",
		res.MaxStaleFrac(), res.VictimChurn.MaxLatencyTicks)
	// Output:
	// epochs 4, poison keys 100, rebuild publishes 8 (3 coalesced)
	// max stale fraction 0.70, max publish latency 75 ticks (cost 60)
}

func ExampleCascadeAttack() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 1000, 40_000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cdfpoison.CascadeAttack(ks, cdfpoison.CascadeOptions{
		Epochs:      4,
		OpsPerEpoch: 200,
		EpochBudget: 40,
		LeafTarget:  16,
		Workload:    cdfpoison.ZipfWorkload(1.1, 85),
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epochs %d, poison keys %d, splits %d vs clean %d\n",
		len(res.Epochs), res.Poison.Len(), res.VictimStruct.Splits, res.CleanStruct.Splits)
	fmt.Printf("structural cost %d vs clean %d (ratio %.2f)\n",
		res.VictimStruct.Cost(), res.CleanStruct.Cost(), res.FinalStructRatio())
	// Output:
	// epochs 4, poison keys 160, splits 23 vs clean 8
	// structural cost 1436 vs clean 407 (ratio 3.53)
}

// Parallelism is a pure performance knob: any worker count produces output
// byte-identical to the sequential run (the determinism contract).
func ExampleWithParallelism() {
	rng := cdfpoison.NewRNG(42)
	ks, err := cdfpoison.UniformKeys(rng, 2000, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := cdfpoison.GreedyMultiPoint(ks, 20, cdfpoison.WithParallelism(1))
	if err != nil {
		log.Fatal(err)
	}
	par, err := cdfpoison.GreedyMultiPoint(ks, 20, cdfpoison.WithParallelism(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identical:", reflect.DeepEqual(seq, par))
	// Output:
	// identical: true
}
