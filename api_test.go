package cdfpoison_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"cdfpoison"
)

// TestEndToEndRegressionAttack walks the full public-API path a downstream
// user would take: generate data, fit, attack, verify amplification.
func TestEndToEndRegressionAttack(t *testing.T) {
	rng := cdfpoison.NewRNG(1)
	ks, err := cdfpoison.UniformKeys(rng, 500, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := cdfpoison.FitCDF(ks)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := cdfpoison.GreedyMultiPoint(ks, 50)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := cdfpoison.FitCDF(atk.Poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if poisoned.Loss <= clean.Loss {
		t.Fatalf("attack failed: %v -> %v", clean.Loss, poisoned.Loss)
	}
	if atk.RatioLoss() < 2 {
		t.Fatalf("ratio %v unexpectedly small for 10%% poisoning", atk.RatioLoss())
	}
}

// TestEndToEndRMIAttackAndIndex exercises the attack plus the index
// substrate: the poisoned index must still answer correctly but cost more.
func TestEndToEndRMIAttackAndIndex(t *testing.T) {
	rng := cdfpoison.NewRNG(2)
	ks, err := cdfpoison.LogNormalKeys(rng, 8_000, 400_000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
		NumModels: 40, Percent: 10, Alpha: 3, MaxMoves: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMIRatio() <= 1 {
		t.Fatalf("RMI ratio %v", res.RMIRatio())
	}
	cleanIdx, err := cdfpoison.BuildRMI(ks, cdfpoison.RMIConfig{Fanout: 40})
	if err != nil {
		t.Fatal(err)
	}
	poisIdx, err := cdfpoison.BuildRMI(ks.Union(res.Poison), cdfpoison.RMIConfig{Fanout: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Correctness survives; cost degrades.
	for i := 0; i < ks.Len(); i += 97 {
		if r := poisIdx.Lookup(ks.At(i)); !r.Found {
			t.Fatalf("legit key lost after poisoning: %d", ks.At(i))
		}
	}
	if poisIdx.Stats().AvgWindow <= cleanIdx.Stats().AvgWindow {
		t.Fatalf("windows did not degrade: %v vs %v",
			poisIdx.Stats().AvgWindow, cleanIdx.Stats().AvgWindow)
	}
}

// TestEndToEndDefense exercises the defense path.
func TestEndToEndDefense(t *testing.T) {
	rng := cdfpoison.NewRNG(3)
	clean, err := cdfpoison.UniformKeys(rng, 300, 6_000)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := cdfpoison.GreedyMultiPoint(clean, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cdfpoison.TrimDefense(atk.Poisoned, 300, cdfpoison.TrimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	poison, err := cdfpoison.NewKeySetStrict(atk.Poison)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := cdfpoison.EvaluateDefense(clean, poison, tr.Removed, tr.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TruePoison != 30 {
		t.Fatalf("eval lost the poison count: %+v", ev)
	}
}

// TestKeyIO exercises the serialization helpers through the facade.
func TestKeyIO(t *testing.T) {
	ks, err := cdfpoison.NewKeySet([]int64{5, 1, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cdfpoison.ReadKeysText(strings.NewReader("9\n1\n5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ks) {
		t.Fatalf("text io mismatch: %v vs %v", got, ks)
	}
	var buf bytes.Buffer
	if err := ks.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	bin, err := cdfpoison.ReadKeysBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bin.Equal(ks) {
		t.Fatal("binary io mismatch")
	}
}

// TestErrorsExposed verifies the sentinel errors surface through the facade.
func TestErrorsExposed(t *testing.T) {
	saturated, err := cdfpoison.NewKeySet([]int64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cdfpoison.OptimalSinglePoint(saturated); !errors.Is(err, cdfpoison.ErrNoGap) {
		t.Fatalf("want ErrNoGap, got %v", err)
	}
	tiny, _ := cdfpoison.NewKeySet([]int64{4})
	if _, err := cdfpoison.OptimalSinglePoint(tiny); !errors.Is(err, cdfpoison.ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
}

// TestBTreeFacade smoke-tests the baseline index through the facade.
func TestBTreeFacade(t *testing.T) {
	bt, err := cdfpoison.BuildBTree(8, []int64{5, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 3 || !bt.Contains(9) {
		t.Fatal("btree facade broken")
	}
}

// TestWithParallelismPublicAPI exercises the exported parallelism options
// end to end: a parallel attack must match the sequential default exactly,
// and a pre-cancelled context must abort the attack.
func TestWithParallelismPublicAPI(t *testing.T) {
	rng := cdfpoison.NewRNG(31)
	ks, err := cdfpoison.LogNormalKeys(rng, 1500, 300_000, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := cdfpoison.GreedyMultiPoint(ks, 60)
	if err != nil {
		t.Fatal(err)
	}
	par, err := cdfpoison.GreedyMultiPoint(ks, 60, cdfpoison.WithParallelism(0)) // all cores
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("WithParallelism changed the greedy attack result")
	}

	rseq, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{NumModels: 15, Percent: 10, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	rpar, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{NumModels: 15, Percent: 10, Alpha: 3},
		cdfpoison.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rseq, rpar) {
		t.Fatal("WithParallelism changed the RMI attack result")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cdfpoison.GreedyMultiPoint(ks, 60, cdfpoison.WithParallelism(2), cdfpoison.WithCancellation(ctx)); err == nil {
		t.Fatal("cancelled context did not abort the attack")
	}
}
