// Command lisbench regenerates every figure of the paper's evaluation
// (Figures 2–8) plus the repository's extensions, ablations, and the
// dynamic-index online poisoning sweep, printing ASCII tables/plots to
// stdout and optionally writing CSV files.
//
// Usage:
//
//	lisbench -fig all                 # everything at default scale
//	lisbench -fig 5 -scale quick      # one figure, test-sized
//	lisbench -fig 6 -scale large -out results/
//	lisbench -fig online -out results/   # online scenario: ratio/probes vs epoch
//	lisbench -fig churn -out results/    # retrain-churn scenario: staleness vs epoch
//	lisbench -fig cascade -out results/  # split-cascade scenario: structural damage vs epoch
//	lisbench -fig throughput -out results/  # concurrent serving: tail latency + ops/sec
//	lisbench -fig perf -out results/     # perf sweep → results/BENCH_PR10.json
//	lisbench -fig perf -scale quick -baseline BENCH_PR10.json   # CI regression gate
//	lisbench -fig perf -cpuprofile cpu.out -memprofile mem.out # profile a run
//
// The perf sweep is machine-dependent by nature, so it is NOT part of -fig
// all; with -baseline the command exits non-zero when any matched cell
// regresses more than -perf-tol in ns/op (or in allocs/op, which is
// machine-independent).
//
// -cpuprofile and -memprofile write pprof profiles covering the selected
// figure runs (the CPU profile spans all of them; the heap profile is a
// post-GC snapshot taken after the last), viewable with `go tool pprof`.
//
// Scales: quick (seconds), default (minutes), large (tens of minutes on one
// core). See DESIGN.md §3 ("Scaling policy") for what each preserves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cdfpoison/internal/bench"
	"cdfpoison/internal/core"
	"cdfpoison/internal/export"
)

// perfBaseline and perfTol parameterize runPerf's regression gate; they are
// package-level so the runner keeps the shared func(Options, string) shape.
var (
	perfBaseline string
	perfTol      float64
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate: 2|3|4|5|6|7|8|ext|ablation|online|serve|churn|cascade|throughput|defense|perf|all (all excludes perf)")
		scale      = flag.String("scale", "default", "experiment scale: quick|default|large")
		seed       = flag.Uint64("seed", 42, "root RNG seed")
		out        = flag.String("out", "", "directory for CSV output (optional)")
		workers    = flag.Int("workers", 0, "worker pool size for the sweeps: 0 = one per core, 1 = sequential; results are identical for any value")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile covering the selected figure runs to `file`")
		memprofile = flag.String("memprofile", "", "write a post-GC heap profile to `file` after the runs finish")
		noBatch    = flag.Bool("no-batch-eval", false, "evaluate scenario probe columns with the per-key lookup loop instead of the sorted-batch kernel; every column is identical either way")
	)
	flag.StringVar(&perfBaseline, "baseline", "", "perf baseline (BENCH_PR10.json) to compare the perf sweep against; exit 1 on regression")
	flag.Float64Var(&perfTol, "perf-tol", 0.20, "fractional ns/op regression tolerance for -baseline")
	flag.Parse()

	opts := bench.Options{Scale: bench.Scale(*scale), Seed: *seed, Workers: *workers, PerKeyEval: *noBatch}
	switch opts.Scale {
	case bench.ScaleQuick, bench.ScaleDefault, bench.ScaleLarge:
	default:
		fatalf("unknown scale %q (want quick|default|large)", *scale)
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("create output dir: %v", err)
		}
	}

	runners := map[string]func(bench.Options, string) error{
		"2":          runFig2,
		"3":          runFig3,
		"4":          runFig4,
		"5":          runFig5,
		"6":          runFig6,
		"7":          runFig7,
		"8":          runFig8,
		"ext":        runExtensions,
		"ablation":   runAblations,
		"online":     runOnline,
		"serve":      runServe,
		"churn":      runChurn,
		"cascade":    runCascade,
		"throughput": runThroughput,
		"defense":    runDefense,
		"perf":       runPerf,
	}
	// perf is deliberately absent: wall-clock benchmarks do not belong in a
	// figures-regeneration run (they are requested explicitly). throughput IS
	// included: its CSV columns are deterministic (ops/sec goes to stdout
	// only), so it regenerates like any figure.
	order := []string{"2", "3", "4", "5", "6", "7", "8", "ext", "ablation", "online", "serve", "churn", "cascade", "throughput", "defense"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fatalf("unknown figure %q (want 2..8, ext, ablation, online, all)", f)
			}
			selected = append(selected, f)
		}
	}
	stopCPU, err := startCPUProfile(*cpuprofile)
	if err != nil {
		fatalf("cpuprofile: %v", err)
	}
	for _, f := range selected {
		start := time.Now()
		if err := runners[f](opts, *out); err != nil {
			stopCPU()
			fatalf("figure %s: %v", f, err)
		}
		fmt.Printf("[%s done in %v]\n\n", name(f), time.Since(start).Round(time.Millisecond))
	}
	stopCPU()
	if err := writeMemProfile(*memprofile); err != nil {
		fatalf("memprofile: %v", err)
	}
}

// startCPUProfile begins a pprof CPU profile written to path; the returned
// stop function (never nil) flushes and closes it. An empty path is a no-op,
// so callers need no conditional.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the heap to path after a forced GC, so the
// profile reflects live retention rather than garbage awaiting collection.
// An empty path is a no-op.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func name(f string) string {
	switch f {
	case "ext":
		return "extensions"
	case "ablation":
		return "ablations"
	case "online":
		return "online scenario"
	case "serve":
		return "serving scenario"
	case "churn":
		return "retrain-churn scenario"
	case "cascade":
		return "split-cascade scenario"
	case "throughput":
		return "throughput scenario"
	case "defense":
		return "defense Pareto sweep"
	case "perf":
		return "perf sweep"
	default:
		return "figure " + f
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lisbench: "+format+"\n", args...)
	os.Exit(1)
}

func writeCSV(dir, fname string, tb *export.Table) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, fname))
	if err != nil {
		return err
	}
	defer f.Close()
	h, rows := tb.CSV()
	return export.WriteCSV(f, h, rows)
}

func runFig2(opts bench.Options, out string) error {
	res, err := bench.Fig2(opts)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 2: compound effect of a single poisoning key ===")
	fmt.Printf("keys: %v\n", res.Keys)
	fmt.Printf("optimal poisoning key: %d (takes rank %d)\n", res.PoisonKey, res.Rank)
	fmt.Printf("regression before: %v\n", res.Before)
	fmt.Printf("regression after:  %v\n", res.After)
	fmt.Printf("ratio loss: %.3f×\n", res.Ratio)

	tb := export.NewTable("key", "rank_before", "rank_after", "is_poison")
	poisoned := res.Keys
	poisoned, _ = poisoned.Insert(res.PoisonKey)
	for i := 0; i < poisoned.Len(); i++ {
		k := poisoned.At(i)
		rb := "-"
		if r, ok := res.Keys.Rank(k); ok {
			rb = fmt.Sprint(r)
		}
		isP := "0"
		if k == res.PoisonKey {
			isP = "1"
		}
		tb.AddRow(fmt.Sprint(k), rb, fmt.Sprint(i+1), isP)
	}
	tb.Render(os.Stdout)
	// CDF scatter before/after.
	var cx, cy, px, py []float64
	for i := 0; i < res.Keys.Len(); i++ {
		cx = append(cx, float64(res.Keys.At(i)))
		cy = append(cy, float64(i+1))
	}
	for i := 0; i < poisoned.Len(); i++ {
		px = append(px, float64(poisoned.At(i)))
		py = append(py, float64(i+1))
	}
	export.RenderChart(os.Stdout, "CDF before (#) and after (o) poisoning", []export.Series{
		{Name: "before", X: cx, Y: cy},
		{Name: "after", X: px, Y: py},
	}, 64, 12)
	return writeCSV(out, "fig2.csv", tb)
}

func runFig3(opts bench.Options, out string) error {
	res, err := bench.Fig3(opts)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 3: loss sequence and first discrete derivative ===")
	fmt.Printf("keys: %v (clean loss %.4f)\n", res.Keys, res.CleanLoss)
	fmt.Printf("max per-gap interior excess over endpoints: %.3g (Theorem 2 predicts <= 0)\n", res.MaxExcess)
	var sx, sy, dx, dy []float64
	tb := export.NewTable("poison_key", "loss", "derivative")
	for i, p := range res.Sequence {
		sx = append(sx, float64(p.Key))
		sy = append(sy, p.Loss)
		d := ""
		if i < len(res.Derivative) {
			d = export.F(res.Derivative[i].Loss)
			dx = append(dx, float64(res.Derivative[i].Key))
			dy = append(dy, res.Derivative[i].Loss)
		}
		tb.AddRow(fmt.Sprint(p.Key), export.F(p.Loss), d)
	}
	export.RenderChart(os.Stdout, "Loss L(kp) across the key space", []export.Series{
		{Name: "loss after poisoning at kp", X: sx, Y: sy},
	}, 64, 12)
	export.RenderChart(os.Stdout, "First discrete derivative of L", []export.Series{
		{Name: "ΔL", X: dx, Y: dy},
	}, 64, 10)
	return writeCSV(out, "fig3.csv", tb)
}

func runFig4(opts bench.Options, out string) error {
	res, err := bench.Fig4(opts)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 4: greedy multi-point attack (n=90, p=10) ===")
	fmt.Printf("ratio loss: %.2f× (paper reports 7.4×)\n", res.Ratio)
	fmt.Printf("regression before: %v\n", res.Before)
	fmt.Printf("regression after:  %v\n", res.After)
	fmt.Printf("poison keys: %v\n", res.Poison)
	fmt.Printf("mean gap width %.1f vs mean poisoned-gap width %.1f\n",
		res.MeanGapWidth, res.MeanPoisonGapWidth)
	var cx, cy []float64
	for i := 0; i < res.Poisoned.Len(); i++ {
		cx = append(cx, float64(res.Poisoned.At(i)))
		cy = append(cy, float64(i+1))
	}
	export.RenderChart(os.Stdout, "Poisoned CDF", []export.Series{{Name: "rank", X: cx, Y: cy}}, 64, 12)
	tb := export.NewTable("poison_key", "order")
	for i, p := range res.Poison {
		tb.AddRow(fmt.Sprint(p), fmt.Sprint(i+1))
	}
	return writeCSV(out, "fig4.csv", tb)
}

func renderGrid(res bench.RegressionGridResult, out, file, paperNote string) error {
	fmt.Printf("trials per cell: %d; %s\n", res.Trials, paperNote)
	tb := export.NewTable("keys", "density_pct", "domain", "poison_pct",
		"median_ratio", "q1", "q3", "whisker_hi", "max", "boxplot")
	// Boxplots share an axis per (keys, density) group for comparability.
	for i := 0; i < len(res.Cells); {
		j := i
		hi := 1.0
		for ; j < len(res.Cells) && res.Cells[j].Keys == res.Cells[i].Keys &&
			res.Cells[j].DensityPct == res.Cells[i].DensityPct; j++ {
			if res.Cells[j].Box.Max > hi {
				hi = res.Cells[j].Box.Max
			}
		}
		for ; i < j; i++ {
			c := res.Cells[i]
			tb.AddRow(fmt.Sprint(c.Keys), export.F(c.DensityPct), fmt.Sprint(c.Domain),
				export.F(c.PoisonPct), export.F(c.Box.Median), export.F(c.Box.Q1),
				export.F(c.Box.Q3), export.F(c.Box.WhiskerHi), export.F(c.Box.Max),
				export.RenderBoxplot(c.Box, 0, hi, 40))
		}
	}
	tb.Render(os.Stdout)
	fmt.Printf("max median ratio: %.1f×\n", res.MaxMedianRatio())
	return writeCSV(out, file, tb)
}

func runFig5(opts bench.Options, out string) error {
	fmt.Println("=== Figure 5: multi-point poisoning, uniform keys ===")
	res, err := bench.RegressionGrid(bench.DistUniform, opts)
	if err != nil {
		return err
	}
	return renderGrid(res, out, "fig5.csv", "paper: ratios up to ~100×")
}

func runFig8(opts bench.Options, out string) error {
	fmt.Println("=== Figure 8: multi-point poisoning, normal keys ===")
	res, err := bench.RegressionGrid(bench.DistNormal, opts)
	if err != nil {
		return err
	}
	return renderGrid(res, out, "fig8.csv", "paper: ratios up to ~8×")
}

func runFig6(opts bench.Options, out string) error {
	fmt.Println("=== Figure 6: RMI attack on synthetic data ===")
	res, err := bench.RMISynthetic(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d legitimate keys\n", res.Keys)
	tb := export.NewTable("dist", "domain", "model_size", "num_models", "poison_pct",
		"alpha", "rmi_ratio", "median_model_ratio", "max_model_ratio", "moves", "injected")
	for _, c := range res.Cells {
		tb.AddRow(string(c.Dist), fmt.Sprint(c.Domain), fmt.Sprint(c.ModelSize),
			fmt.Sprint(c.NumModels), export.F(c.PoisonPct), export.F(c.Alpha),
			export.F(c.RMIRatio), export.F(c.Box.Median), export.F(c.MaxModelRatio),
			fmt.Sprint(c.Moves), fmt.Sprint(c.Injected))
	}
	tb.Render(os.Stdout)
	fmt.Printf("max RMI ratio: uniform %.1f×, log-normal %.1f× (paper: up to ~300×)\n",
		res.MaxRMIRatio(bench.DistUniform), res.MaxRMIRatio(bench.DistLogNormal))
	fmt.Printf("max individual model ratio: %.1f× (paper: up to ~3000×)\n",
		res.MaxModelRatioOverall(""))
	return writeCSV(out, "fig6.csv", tb)
}

func runFig7(opts bench.Options, out string) error {
	fmt.Println("=== Figure 7: RMI attack on real-world (simulated) data ===")
	for _, ds := range []bench.RealDataset{bench.DatasetSalaries, bench.DatasetOSM} {
		res, err := bench.RealData(ds, opts)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s: n=%d, density %.2f%% ---\n", ds, res.Keys.Len(), res.Density*100)
		export.RenderChart(os.Stdout, "CDF", []export.Series{
			{Name: "rank", X: res.CDFKeys, Y: res.CDFRanks},
		}, 64, 10)
		tb := export.NewTable("model_size", "num_models", "poison_pct",
			"rmi_ratio", "median_model_ratio", "max_model_ratio", "injected")
		for _, c := range res.Cells {
			tb.AddRow(fmt.Sprint(c.ModelSize), fmt.Sprint(c.NumModels), export.F(c.PoisonPct),
				export.F(c.RMIRatio), export.F(c.Box.Median), export.F(c.MaxModelRatio),
				fmt.Sprint(c.Injected))
		}
		tb.Render(os.Stdout)
		fmt.Printf("max RMI ratio: %.1f× (paper: 4–24×)\n", res.MaxRMIRatio())
		if err := writeCSV(out, fmt.Sprintf("fig7-%s.csv", ds), tb); err != nil {
			return err
		}
	}
	return nil
}

func runExtensions(opts bench.Options, out string) error {
	fmt.Println("=== Extension A: lookup-cost degradation of the RMI ===")
	cells, err := bench.LookupDegradation(opts)
	if err != nil {
		return err
	}
	tb := export.NewTable("dist", "keys", "fanout", "poison_pct",
		"clean_probes", "poisoned_probes", "clean_avg_window", "poisoned_avg_window",
		"clean_max_window", "poisoned_max_window", "stage2_mse_gain")
	for _, c := range cells {
		tb.AddRow(string(c.Dist), fmt.Sprint(c.Keys), fmt.Sprint(c.Fanout),
			export.F(c.PoisonPct), export.F(c.CleanProbes), export.F(c.PoisonedProbes),
			export.F(c.CleanAvgWindow), export.F(c.PoisonedAvgWindow),
			fmt.Sprint(c.CleanMaxWindow), fmt.Sprint(c.PoisonedMaxWindow),
			export.F(c.SecondStageMSEGain))
	}
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ext-lookup.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Extension B: backend comparison through index.Backend ===")
	bcells, err := bench.CompareBackends(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("backend", "keys", "clean_probes", "poisoned_probes",
		"probe_inflation", "clean_window", "poisoned_window", "retrains")
	for _, c := range bcells {
		tb.AddRow(c.Backend, fmt.Sprint(c.Keys), export.F(c.CleanProbes),
			export.F(c.PoisonedProbes), export.F(c.ProbeInflation),
			fmt.Sprint(c.CleanWindow), fmt.Sprint(c.PoisonedWindow),
			fmt.Sprint(c.Retrains))
	}
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ext-backends.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Extension C: TRIM defense vs the CDF attack ===")
	tcells, err := bench.TrimDefense(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("keys", "poison_pct", "precision", "recall",
		"attack_ratio", "after_defense_ratio", "millis")
	for _, c := range tcells {
		tb.AddRow(fmt.Sprint(c.Keys), export.F(c.PoisonPct), export.F(c.Precision),
			export.F(c.Recall), export.F(c.AttackRatio), export.F(c.AfterRatio),
			fmt.Sprint(c.Millis))
	}
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ext-trim.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Extension E2: insertion vs deletion vs modification adversaries ===")
	ac, err := bench.AdversaryComparison(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("keys", "budget_pct", "insertion_ratio", "removal_ratio", "modification_ratio")
	tb.AddRow(fmt.Sprint(ac.Keys), export.F(ac.BudgetPct), export.F(ac.InsertionRatio),
		export.F(ac.RemovalRatio), export.F(ac.ModifyRatio))
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ext-adversaries.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Extension F: segment inflation of a PGM/FITing-tree-style index ===")
	pcells, err := bench.PLAInflation(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("epsilon", "keys", "poison_pct", "clean_segments",
		"loss_attack_segments", "loss_inflation", "burst_segments",
		"burst_inflation", "burst_injected", "clean_bytes", "burst_bytes")
	for _, c := range pcells {
		tb.AddRow(fmt.Sprint(c.Epsilon), fmt.Sprint(c.Keys), export.F(c.PoisonPct),
			fmt.Sprint(c.CleanSegments), fmt.Sprint(c.LossAttackSegments),
			export.F(c.LossInflation), fmt.Sprint(c.BurstSegments),
			export.F(c.BurstInflation), fmt.Sprint(c.BurstInjected),
			fmt.Sprint(c.CleanBytes), fmt.Sprint(c.BurstBytes))
	}
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ext-pla.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Extension G: quadratic second stage as a mitigation ===")
	qc, err := bench.QuadraticMitigation(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("keys", "poison_pct", "linear_ratio", "quad_ratio",
		"linear_clean_loss", "quad_clean_loss", "params_linear", "params_quad")
	tb.AddRow(fmt.Sprint(qc.Keys), export.F(qc.PoisonPct), export.F(qc.LinearRatio),
		export.F(qc.QuadRatio), export.F(qc.LinearCleanLoss), export.F(qc.QuadCleanLoss),
		fmt.Sprint(qc.ParamsLinear), fmt.Sprint(qc.ParamsQuad))
	tb.Render(os.Stdout)
	return writeCSV(out, "ext-quad.csv", tb)
}

func runAblations(opts bench.Options, out string) error {
	fmt.Println("=== Ablation 1: endpoint enumeration vs brute force ===")
	ep, err := bench.EndpointsVsBrute(opts)
	if err != nil {
		return err
	}
	tb := export.NewTable("keys", "domain", "opt_candidates", "brute_candidates",
		"agree", "opt_micros", "brute_micros", "speedup")
	speedup := float64(ep.BruteMicros) / float64(max64(ep.OptMicros, 1))
	tb.AddRow(fmt.Sprint(ep.Keys), fmt.Sprint(ep.Domain), fmt.Sprint(ep.OptCandidates),
		fmt.Sprint(ep.BruteCandidates), fmt.Sprint(ep.Agree),
		fmt.Sprint(ep.OptMicros), fmt.Sprint(ep.BruteMicros), export.F(speedup))
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ablation-endpoints.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Ablation 2: greedy volume allocation vs uniform split ===")
	va, err := bench.VolumeAllocation(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("dist", "uniform_rmi_ratio", "greedy_rmi_ratio", "moves")
	tb.AddRow(string(va.Dist), export.F(va.UniformRatio), export.F(va.GreedyRatio),
		fmt.Sprint(va.Moves))
	tb.Render(os.Stdout)
	if err := writeCSV(out, "ablation-volume.csv", tb); err != nil {
		return err
	}

	fmt.Println("\n=== Ablation 3: per-model poisoning threshold α ===")
	ac, err := bench.AlphaSweep(opts)
	if err != nil {
		return err
	}
	tb = export.NewTable("alpha", "rmi_ratio", "max_model_budget")
	for _, c := range ac {
		a := export.F(c.Alpha)
		if c.Alpha == 0 {
			a = "unbounded"
		}
		tb.AddRow(a, export.F(c.RMIRatio), fmt.Sprint(c.MaxBudget))
	}
	tb.Render(os.Stdout)
	return writeCSV(out, "ablation-alpha.csv", tb)
}

func runOnline(opts bench.Options, out string) error {
	fmt.Println("=== Online scenario: poisoning an updatable index across retrain cycles ===")
	res, err := bench.OnlineSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d initial keys, %d epochs per cell, %.0f%% honest arrivals per epoch\n",
		res.Keys, res.EpochsPerCell, res.ArrivalsPct)
	tb := export.NewTable("policy", "budget_pct", "epoch", "injected", "poison_total",
		"retrains", "buffer", "displaced", "clean_loss", "poisoned_loss", "ratio",
		"clean_probes", "poisoned_probes")
	for _, c := range res.Cells {
		for _, e := range c.Epochs {
			tb.AddRow(c.Policy.String(), export.F(c.BudgetPct), fmt.Sprint(e.Epoch),
				fmt.Sprint(e.Injected), fmt.Sprint(e.PoisonTotal), fmt.Sprint(e.Retrains),
				fmt.Sprint(e.BufferLen), fmt.Sprint(e.Displaced), export.F(e.CleanLoss),
				export.F(e.PoisonedLoss), export.F(e.RatioLoss),
				export.F(e.CleanProbes), export.F(e.PoisonedProbes))
		}
	}
	tb.Render(os.Stdout)
	// Ratio-vs-epoch chart for the highest-budget cell of each policy.
	var series []export.Series
	for _, c := range res.Cells {
		if c.BudgetPct != res.Cells[len(res.Cells)-1].BudgetPct {
			continue
		}
		var xs, ys []float64
		for _, e := range c.Epochs {
			xs = append(xs, float64(e.Epoch))
			ys = append(ys, e.RatioLoss)
		}
		series = append(series, export.Series{Name: c.Policy.String(), X: xs, Y: ys})
	}
	export.RenderChart(os.Stdout, "Loss ratio vs epoch (highest budget)", series, 64, 12)
	fmt.Printf("max final ratio: %.1f×\n", res.MaxFinalRatio())
	fmt.Printf("probe eval: %s\n", evalPath(res.Eval))
	return writeCSV(out, "online.csv", tb)
}

func runServe(opts bench.Options, out string) error {
	fmt.Println("=== Serving scenario: poisoning a sharded index under honest load ===")
	res, err := bench.ServeSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d initial keys, %d epochs per cell, %d honest ops per epoch\n",
		res.Keys, res.EpochsPerCell, res.OpsPerEpoch)
	tb := export.NewTable("shards", "workload", "budget_pct", "epoch", "reads", "writes",
		"injected", "poison_total", "displaced", "retrains", "buffer", "imbalance",
		"clean_loss", "poisoned_loss", "ratio", "clean_probes", "poisoned_probes",
		"max_shard_ratio")
	for _, c := range res.Cells {
		for _, e := range c.Epochs {
			tb.AddRow(fmt.Sprint(c.Shards), c.Workload.String(), export.F(c.BudgetPct),
				fmt.Sprint(e.Epoch), fmt.Sprint(e.Reads), fmt.Sprint(e.Writes),
				fmt.Sprint(e.Injected), fmt.Sprint(e.PoisonTotal), fmt.Sprint(e.Displaced),
				fmt.Sprint(e.Retrains), fmt.Sprint(e.BufferLen), export.F(e.Imbalance),
				export.F(e.CleanLoss), export.F(e.PoisonedLoss), export.F(e.RatioLoss),
				export.F(e.CleanProbes), export.F(e.PoisonedProbes), export.F(e.MaxShardRatio()))
		}
	}
	tb.Render(os.Stdout)
	// Ratio-vs-epoch chart per shard count, for the uniform mix.
	var series []export.Series
	for _, c := range res.Cells {
		if !strings.HasPrefix(c.Workload.String(), "uniform") { // chart one mix
			continue
		}
		var xs, ys []float64
		for _, e := range c.Epochs {
			xs = append(xs, float64(e.Epoch))
			ys = append(ys, e.RatioLoss)
		}
		series = append(series, export.Series{Name: fmt.Sprintf("%d shards", c.Shards), X: xs, Y: ys})
	}
	export.RenderChart(os.Stdout, "Aggregate loss ratio vs epoch (uniform mix)", series, 64, 12)
	fmt.Printf("max final ratio: %.1f×\n", res.MaxFinalRatio())
	fmt.Printf("probe eval: %s\n", evalPath(res.Eval))
	return writeCSV(out, "serve.csv", tb)
}

// evalPath renders a sweep's probe-eval accounting: which eval path
// (sorted-batch kernel vs per-key loop, DESIGN.md §12) produced the probe
// columns, and how many key evaluations it handled.
func evalPath(s core.EvalStats) string {
	if s.PerKeyKeys > 0 {
		return fmt.Sprintf("per-key loop, %d key evaluations (-no-batch-eval)", s.PerKeyKeys)
	}
	return fmt.Sprintf("sorted-batch kernel, %d key evaluations", s.BatchedKeys)
}

// perfArtifact is the perf report's file name: the repository root holds
// the checked-in baseline of the same name that CI gates against.
const perfArtifact = "BENCH_PR10.json"

// runChurn renders the retrain-churn sweep: the per-epoch staleness,
// publish-latency, and loss trajectory of core.ChurnAttack across
// rebuild-cost models and budgets.
func runChurn(opts bench.Options, out string) error {
	fmt.Println("=== Retrain-churn scenario: poisoning the rebuild pipeline itself ===")
	res, err := bench.ChurnSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d initial keys, %d shards, policy %s, %s mix, %d epochs per cell, %d ops/epoch\n",
		res.Keys, res.Shards, res.Policy, res.Workload, res.EpochsPerCell, res.OpsPerEpoch)
	tb := export.NewTable("cost", "budget_pct", "epoch", "target_shard", "reads", "writes",
		"injected", "poison_total", "retrains", "publishes", "coalesced",
		"stale_reads", "stale_frac", "clean_stale_frac", "stale_ticks", "rebuild_ticks",
		"pub_lat_mean", "pub_lat_max", "clean_loss", "poisoned_loss", "ratio",
		"clean_probes", "poisoned_probes", "probe_ratio")
	for _, c := range res.Cells {
		for _, e := range c.Epochs {
			tb.AddRow(c.Cost.String(), export.F(c.BudgetPct), fmt.Sprint(e.Epoch),
				fmt.Sprint(e.TargetShard), fmt.Sprint(e.Reads), fmt.Sprint(e.Writes),
				fmt.Sprint(e.Injected), fmt.Sprint(e.PoisonTotal), fmt.Sprint(e.Retrains),
				fmt.Sprint(e.Publishes), fmt.Sprint(e.Coalesced),
				fmt.Sprint(e.StaleReads), export.F(e.StaleFrac), export.F(e.CleanStaleFrac),
				fmt.Sprint(e.StaleTicks), fmt.Sprint(e.RebuildTicks),
				export.F(e.MeanPublishLatency), fmt.Sprint(e.MaxPublishLatency),
				export.F(e.CleanLoss), export.F(e.PoisonedLoss), export.F(e.RatioLoss),
				export.F(e.CleanProbes), export.F(e.PoisonedProbes), export.F(e.ProbeRatio))
		}
	}
	tb.Render(os.Stdout)
	// Stale-fraction-vs-epoch chart for the highest-budget cell of each
	// non-zero cost model.
	var series []export.Series
	for _, c := range res.Cells {
		if c.Cost.Zero() || c.BudgetPct != res.Cells[len(res.Cells)-1].BudgetPct {
			continue
		}
		var xs, ys []float64
		for _, e := range c.Epochs {
			xs = append(xs, float64(e.Epoch))
			ys = append(ys, e.StaleFrac)
		}
		series = append(series, export.Series{Name: c.Cost.String(), X: xs, Y: ys})
	}
	export.RenderChart(os.Stdout, "Victim stale-read fraction vs epoch (highest budget)", series, 64, 12)
	fmt.Printf("max stale-read fraction: %.2f, max publish latency: %d ticks\n",
		res.MaxStaleFrac(), res.MaxLatency())
	return writeCSV(out, "churn.csv", tb)
}

// runCascade renders the split-cascade sweep: the per-epoch structural
// damage trajectory of core.CascadeAttack on the gapped-array backend
// across leaf targets and budgets. Every column is deterministic, so the
// CSV is fingerprintable.
func runCascade(opts bench.Options, out string) error {
	fmt.Println("=== Split-cascade scenario: structural poisoning of the gapped-array index ===")
	res, err := bench.CascadeSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d initial keys, %s mix, %d epochs per cell, %d ops/epoch\n",
		res.Keys, res.Workload, res.EpochsPerCell, res.OpsPerEpoch)
	tb := export.NewTable("leaf_target", "budget_pct", "epoch", "target_node",
		"target_density", "reads", "writes", "injected", "poison_total",
		"shift_writes", "clean_shift_writes", "splits", "clean_splits",
		"cascades", "clean_cascades", "nodes", "clean_nodes",
		"struct_cost", "clean_struct_cost", "struct_ratio", "damage_score",
		"clean_probes", "poisoned_probes", "probe_ratio",
		"clean_loss", "poisoned_loss", "loss_ratio")
	for _, c := range res.Cells {
		for _, e := range c.Epochs {
			tb.AddRow(fmt.Sprint(c.LeafTarget), export.F(c.BudgetPct), fmt.Sprint(e.Epoch),
				fmt.Sprint(e.TargetNode), export.F(e.TargetDensity),
				fmt.Sprint(e.Reads), fmt.Sprint(e.Writes),
				fmt.Sprint(e.Injected), fmt.Sprint(e.PoisonTotal),
				fmt.Sprint(e.ShiftWrites), fmt.Sprint(e.CleanShiftWrites),
				fmt.Sprint(e.Splits), fmt.Sprint(e.CleanSplits),
				fmt.Sprint(e.Cascades), fmt.Sprint(e.CleanCascades),
				fmt.Sprint(e.Nodes), fmt.Sprint(e.CleanNodes),
				fmt.Sprint(e.StructCost), fmt.Sprint(e.CleanStructCost),
				export.F(e.StructRatio), export.F(e.DamageScore),
				export.F(e.CleanProbes), export.F(e.PoisonedProbes), export.F(e.ProbeRatio),
				export.F(e.CleanLoss), export.F(e.PoisonedLoss), export.F(e.RatioLoss))
		}
	}
	tb.Render(os.Stdout)
	// Struct-ratio-vs-epoch chart for the highest-budget cell of each leaf
	// target.
	var series []export.Series
	for _, c := range res.Cells {
		if c.BudgetPct != res.Cells[len(res.Cells)-1].BudgetPct {
			continue
		}
		var xs, ys []float64
		for _, e := range c.Epochs {
			xs = append(xs, float64(e.Epoch))
			ys = append(ys, e.StructRatio)
		}
		series = append(series, export.Series{Name: fmt.Sprintf("leaf=%d", c.LeafTarget), X: xs, Y: ys})
	}
	export.RenderChart(os.Stdout, "Victim/clean structural-cost ratio vs epoch (highest budget)", series, 64, 12)
	fmt.Printf("max struct ratio: %.1f×, attacker-forced cascades: %d\n",
		res.MaxStructRatio(), res.TotalCascades())
	return writeCSV(out, "cascade.csv", tb)
}

// runDefense renders the attack-vs-defense Pareto sweep: every scenario at
// three defense strengths, with damage reduction plotted against the honest-
// traffic overhead the defense charged. Every column is deterministic, so
// the CSV is fingerprintable.
func runDefense(opts bench.Options, out string) error {
	fmt.Println("=== Defense Pareto sweep: attack-damage reduction vs honest-traffic overhead ===")
	res, err := bench.DefenseSweep(opts)
	if err != nil {
		return err
	}
	tb := export.NewTable("scenario", "strength", "defense", "damage", "damage_excess",
		"damage_reduction", "honest_overhead", "poison_blocked",
		"flagged_poison", "flagged_honest", "throttled_poison", "throttled_honest",
		"clean_flagged", "clean_throttled", "frontier")
	for _, c := range res.Cells {
		tb.AddRow(c.Scenario, c.Strength, c.Spec,
			export.F(c.Damage), export.F(c.Excess), export.F(c.Reduction),
			export.F(c.Overhead), export.F(c.PoisonBlocked),
			fmt.Sprint(c.Report.FlaggedPoison), fmt.Sprint(c.Report.FlaggedHonest),
			fmt.Sprint(c.Report.ThrottledPoison), fmt.Sprint(c.Report.ThrottledHonest),
			fmt.Sprint(c.Report.CleanFlagged), fmt.Sprint(c.Report.CleanThrottled),
			fmt.Sprint(c.Frontier))
	}
	tb.Render(os.Stdout)
	// Per-scenario headline: the best armed tier under the 20% overhead bar.
	for _, s := range res.Scenarios() {
		best, ok := res.Best(s, 0.2)
		if !ok {
			fmt.Printf("%-8s no armed tier under the 20%% overhead bar\n", s)
			continue
		}
		fmt.Printf("%-8s best: %-45s %6.1fx damage reduction at %4.1f%% honest overhead\n",
			s, best.Spec, best.Reduction, best.Overhead*100)
	}
	return writeCSV(out, "defense.csv", tb)
}

// runThroughput renders the concurrent-serving throughput sweep: per-epoch
// tail-latency percentiles (probe counts — deterministic, so the CSV is
// fingerprintable) clean vs poisoned, with wall-clock ops/sec on stdout
// only.
func runThroughput(opts bench.Options, out string) error {
	fmt.Println("=== Throughput scenario: tail latency of the concurrent serving plane under poisoning ===")
	res, err := bench.ThroughputSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("n = %d initial keys, %d shards, policy %s, %d epochs per cell, %d ops/epoch, %d readers × batch %d\n",
		res.Keys, res.Shards, res.Policy, res.EpochsPerCell, res.OpsPerEpoch, res.Readers, res.BatchSize)
	tb := export.NewTable("workload", "cost", "budget_pct", "epoch",
		"clean_p50", "clean_p99", "clean_p999", "clean_max",
		"poisoned_p50", "poisoned_p99", "poisoned_p999", "poisoned_max",
		"p99_ratio", "p999_ratio", "clean_probes", "poisoned_probes",
		"clean_stale_frac", "poisoned_stale_frac", "injected",
		"clean_loss", "poisoned_loss", "loss_ratio",
		"clean_hist_sum", "poisoned_hist_sum")
	for _, c := range res.Cells {
		for e := range c.Poisoned {
			cl, po := c.Clean[e], c.Poisoned[e]
			tb.AddRow(c.Workload.String(), c.Cost.String(), export.F(c.BudgetPct),
				fmt.Sprint(po.Epoch),
				fmt.Sprint(cl.P50), fmt.Sprint(cl.P99), fmt.Sprint(cl.P999), fmt.Sprint(cl.MaxProbes),
				fmt.Sprint(po.P50), fmt.Sprint(po.P99), fmt.Sprint(po.P999), fmt.Sprint(po.MaxProbes),
				export.F(ratio(po.P99, cl.P99)), export.F(ratio(po.P999, cl.P999)),
				fmt.Sprint(cl.ProbeTotal), fmt.Sprint(po.ProbeTotal),
				export.F(cl.StaleFrac), export.F(po.StaleFrac), fmt.Sprint(po.Injected),
				export.F(cl.ContentLoss), export.F(po.ContentLoss),
				export.F(ratio64(po.ContentLoss, cl.ContentLoss)),
				fmt.Sprintf("%016x", cl.HistChecksum), fmt.Sprintf("%016x", po.HistChecksum))
		}
	}
	tb.Render(os.Stdout)
	// Tail-latency chart: poisoned p999 vs epoch for each cost model under
	// the zipf mix.
	var series []export.Series
	for _, c := range res.Cells {
		if !strings.HasPrefix(c.Workload.String(), "zipf") {
			continue
		}
		var xs, ys []float64
		for _, e := range c.Poisoned {
			xs = append(xs, float64(e.Epoch))
			ys = append(ys, float64(e.P999))
		}
		series = append(series, export.Series{Name: c.Cost.String(), X: xs, Y: ys})
	}
	export.RenderChart(os.Stdout, "Poisoned p999 probe latency vs epoch (zipf mix)", series, 64, 12)
	// Wall-clock figures: stdout only, never in the fingerprinted CSV.
	fmt.Println("wall-clock throughput (machine-dependent, not in CSV):")
	for _, c := range res.Cells {
		fmt.Printf("  %-14s %-24s clean %10.0f ops/s   poisoned %10.0f ops/s\n",
			c.Workload, c.Cost, c.CleanOpsPerSec, c.PoisonedOpsPerSec)
	}
	fmt.Printf("max poisoned/clean p999 ratio: %.2f×\n", res.MaxP999Ratio())
	return writeCSV(out, "throughput.csv", tb)
}

func ratio(poisoned, clean int64) float64 {
	return ratio64(float64(poisoned), float64(clean))
}

func ratio64(poisoned, clean float64) float64 {
	if clean == 0 {
		if poisoned == 0 {
			return 1
		}
		return poisoned
	}
	return poisoned / clean
}

// runPerf measures the fixed attack×n×workers cell list (bench.PerfSweep),
// prints the table, writes the perf artifact when -out is given, and —
// when -baseline names a previous report — fails on >perfTol ns/op (or
// allocs/op) regression in any matched cell. EXPERIMENTS.md's perf table
// records the checked-in baseline's provenance.
func runPerf(opts bench.Options, out string) error {
	fmt.Println("=== Perf sweep: attack throughput trajectory (" + perfArtifact + ") ===")
	rep, err := bench.PerfSweep(opts)
	if err != nil {
		return err
	}
	fmt.Printf("host: %s/%s, %d CPU (GOMAXPROCS %d), %s, scale %s\n",
		rep.GOOS, rep.GOARCH, rep.NumCPU, rep.GOMAXPROCS, rep.GoVersion, rep.Scale)
	tb := export.NewTable("attack", "n", "p", "workers", "iters",
		"ns_per_op", "allocs_per_op", "bytes_per_op")
	for _, r := range rep.Records {
		tb.AddRow(r.Attack, fmt.Sprint(r.N), fmt.Sprint(r.P), fmt.Sprint(r.Workers),
			fmt.Sprint(r.Iters), export.F(r.NsPerOp), export.F(r.AllocsPerOp),
			export.F(r.BytesPerOp))
	}
	tb.Render(os.Stdout)
	if out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(out, perfArtifact)
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if perfBaseline == "" {
		return nil
	}
	blob, err := os.ReadFile(perfBaseline)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base bench.PerfReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", perfBaseline, err)
	}
	deltas, ok := bench.ComparePerf(base, rep, perfTol)
	ct := export.NewTable("cell", "base_ns", "cur_ns", "ns_ratio", "base_allocs", "cur_allocs", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		if d.Reason != "" {
			verdict = d.Reason
		}
		ct.AddRow(d.Key, export.F(d.BaseNs), export.F(d.CurNs), export.F(d.NsRatio),
			export.F(d.BaseAllocs), export.F(d.CurAllocs), verdict)
	}
	ct.Render(os.Stdout)
	if !ok {
		return fmt.Errorf("perf regression against %s exceeds %.0f%% tolerance", perfBaseline, perfTol*100)
	}
	fmt.Printf("no regression against %s (tolerance %.0f%%)\n", perfBaseline, perfTol*100)
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
