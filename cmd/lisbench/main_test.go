package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"cdfpoison/internal/bench"
)

// Every figure runner is exercised at quick scale with a temp CSV directory,
// covering the rendering and export paths end to end.

func quickOpts() bench.Options { return bench.Options{Scale: bench.ScaleQuick, Seed: 7} }

// silently runs fn with os.Stdout pointed at the null device, so the ASCII
// figure output does not pollute `go test` logs.
func silently(t *testing.T, fn func() error) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	orig := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = orig }()
	return fn()
}

func runAndCheckCSV(t *testing.T, name string, run func(bench.Options, string) error, wantFiles ...string) {
	t.Helper()
	dir := t.TempDir()
	if err := silently(t, func() error { return run(quickOpts(), dir) }); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, f := range wantFiles {
		path := filepath.Join(dir, f)
		fh, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: missing CSV %s: %v", name, f, err)
		}
		rows, err := csv.NewReader(fh).ReadAll()
		fh.Close()
		if err != nil {
			t.Fatalf("%s: unparseable CSV %s: %v", name, f, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: CSV %s has %d rows (want header + data)", name, f, len(rows))
		}
	}
}

func TestRunFig2(t *testing.T) { runAndCheckCSV(t, "fig2", runFig2, "fig2.csv") }
func TestRunFig3(t *testing.T) { runAndCheckCSV(t, "fig3", runFig3, "fig3.csv") }
func TestRunFig4(t *testing.T) { runAndCheckCSV(t, "fig4", runFig4, "fig4.csv") }
func TestRunFig5(t *testing.T) { runAndCheckCSV(t, "fig5", runFig5, "fig5.csv") }
func TestRunFig6(t *testing.T) { runAndCheckCSV(t, "fig6", runFig6, "fig6.csv") }
func TestRunFig7(t *testing.T) {
	runAndCheckCSV(t, "fig7", runFig7, "fig7-miami-salaries.csv", "fig7-osm-latitudes.csv")
}
func TestRunFig8(t *testing.T) { runAndCheckCSV(t, "fig8", runFig8, "fig8.csv") }

func TestRunExtensions(t *testing.T) {
	runAndCheckCSV(t, "ext", runExtensions,
		"ext-lookup.csv", "ext-btree.csv", "ext-trim.csv",
		"ext-adversaries.csv", "ext-pla.csv", "ext-quad.csv")
}

func TestRunOnline(t *testing.T) {
	runAndCheckCSV(t, "online", runOnline, "online.csv")
}

// TestOnlineCSVRowCount: the online CSV carries exactly one row per
// (epoch × budget × policy) cell, plus the header.
func TestOnlineCSVRowCount(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runOnline(quickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "online.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.OnlineSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(res.Cells)*res.EpochsPerCell
	if len(rows) != want {
		t.Fatalf("online.csv has %d rows, want %d (header + cells×epochs)", len(rows), want)
	}
}

func TestRunAblations(t *testing.T) {
	runAndCheckCSV(t, "ablation", runAblations,
		"ablation-endpoints.csv", "ablation-volume.csv", "ablation-alpha.csv")
}

func TestRunnersWithoutOutputDir(t *testing.T) {
	// CSV output is optional; runners must succeed with an empty dir string.
	for name, run := range map[string]func(bench.Options, string) error{
		"fig2": runFig2, "fig4": runFig4,
	} {
		run := run
		if err := silently(t, func() error { return run(quickOpts(), "") }); err != nil {
			t.Fatalf("%s without -out: %v", name, err)
		}
	}
}

func TestCSVDeterminism(t *testing.T) {
	// Same seed → byte-identical CSV: the reproducibility guarantee
	// EXPERIMENTS.md relies on.
	read := func() []byte {
		dir := t.TempDir()
		if err := silently(t, func() error { return runFig5(quickOpts(), dir) }); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := read(), read()
	if string(a) != string(b) {
		t.Fatal("fig5 CSV differs across identical runs")
	}
}
