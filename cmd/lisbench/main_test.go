package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cdfpoison/internal/bench"
)

// Every figure runner is exercised at quick scale with a temp CSV directory,
// covering the rendering and export paths end to end.

func quickOpts() bench.Options { return bench.Options{Scale: bench.ScaleQuick, Seed: 7} }

// silently runs fn with os.Stdout pointed at the null device, so the ASCII
// figure output does not pollute `go test` logs.
func silently(t *testing.T, fn func() error) error {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	orig := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = orig }()
	return fn()
}

func runAndCheckCSV(t *testing.T, name string, run func(bench.Options, string) error, wantFiles ...string) {
	t.Helper()
	dir := t.TempDir()
	if err := silently(t, func() error { return run(quickOpts(), dir) }); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, f := range wantFiles {
		path := filepath.Join(dir, f)
		fh, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: missing CSV %s: %v", name, f, err)
		}
		rows, err := csv.NewReader(fh).ReadAll()
		fh.Close()
		if err != nil {
			t.Fatalf("%s: unparseable CSV %s: %v", name, f, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: CSV %s has %d rows (want header + data)", name, f, len(rows))
		}
	}
}

func TestRunFig2(t *testing.T) { runAndCheckCSV(t, "fig2", runFig2, "fig2.csv") }
func TestRunFig3(t *testing.T) { runAndCheckCSV(t, "fig3", runFig3, "fig3.csv") }
func TestRunFig4(t *testing.T) { runAndCheckCSV(t, "fig4", runFig4, "fig4.csv") }
func TestRunFig5(t *testing.T) { runAndCheckCSV(t, "fig5", runFig5, "fig5.csv") }
func TestRunFig6(t *testing.T) { runAndCheckCSV(t, "fig6", runFig6, "fig6.csv") }
func TestRunFig7(t *testing.T) {
	runAndCheckCSV(t, "fig7", runFig7, "fig7-miami-salaries.csv", "fig7-osm-latitudes.csv")
}
func TestRunFig8(t *testing.T) { runAndCheckCSV(t, "fig8", runFig8, "fig8.csv") }

func TestRunExtensions(t *testing.T) {
	runAndCheckCSV(t, "ext", runExtensions,
		"ext-lookup.csv", "ext-backends.csv", "ext-trim.csv",
		"ext-adversaries.csv", "ext-pla.csv", "ext-quad.csv")
}

func TestRunOnline(t *testing.T) {
	runAndCheckCSV(t, "online", runOnline, "online.csv")
}

func TestRunChurn(t *testing.T) {
	runAndCheckCSV(t, "churn", runChurn, "churn.csv")
}

func TestChurnCSVRowCount(t *testing.T) {
	// 6 quick cells (3 cost models × 2 budgets) × 3 epochs + header.
	dir := t.TempDir()
	if err := silently(t, func() error { return runChurn(quickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "churn.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if want := 6*3 + 1; len(rows) != want {
		t.Fatalf("churn.csv has %d rows, want %d", len(rows), want)
	}
}

func TestRunServe(t *testing.T) {
	runAndCheckCSV(t, "serve", runServe, "serve.csv")
}

// TestServeCSVRowCount: the serve CSV carries exactly one row per
// (epoch × shard-count × workload) cell, plus the header.
func TestServeCSVRowCount(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runServe(quickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "serve.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.ServeSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(res.Cells)*res.EpochsPerCell
	if len(rows) != want {
		t.Fatalf("serve.csv has %d rows, want %d (header + cells×epochs)", len(rows), want)
	}
}

// TestOnlineCSVRowCount: the online CSV carries exactly one row per
// (epoch × budget × policy) cell, plus the header.
func TestOnlineCSVRowCount(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runOnline(quickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "online.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.OnlineSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + len(res.Cells)*res.EpochsPerCell
	if len(rows) != want {
		t.Fatalf("online.csv has %d rows, want %d (header + cells×epochs)", len(rows), want)
	}
}

func TestRunDefense(t *testing.T) {
	runAndCheckCSV(t, "defense", runDefense, "defense.csv")
}

// TestDefenseCSVRowCount: one row per (scenario × strength) cell plus the
// header — five scenarios, three defense tiers each.
func TestDefenseCSVRowCount(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runDefense(quickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "defense.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if want := 5*3 + 1; len(rows) != want {
		t.Fatalf("defense.csv has %d rows, want %d (header + scenarios×strengths)", len(rows), want)
	}
}

func TestRunAblations(t *testing.T) {
	runAndCheckCSV(t, "ablation", runAblations,
		"ablation-endpoints.csv", "ablation-volume.csv", "ablation-alpha.csv")
}

func TestRunnersWithoutOutputDir(t *testing.T) {
	// CSV output is optional; runners must succeed with an empty dir string.
	for name, run := range map[string]func(bench.Options, string) error{
		"fig2": runFig2, "fig4": runFig4,
	} {
		run := run
		if err := silently(t, func() error { return run(quickOpts(), "") }); err != nil {
			t.Fatalf("%s without -out: %v", name, err)
		}
	}
}

// perfQuickOpts pins the perf sweep to one measured iteration per cell so
// the runner tests stay fast (Trials is the bench.PerfSweep test hook).
func perfQuickOpts() bench.Options { return bench.Options{Scale: bench.ScaleQuick, Seed: 7, Trials: 1} }

func TestRunPerfWritesReport(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runPerf(perfQuickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, perfArtifact))
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("%s unparseable: %v", perfArtifact, err)
	}
	if rep.Schema != bench.PerfSchema || len(rep.Records) == 0 {
		t.Fatalf("report shape: schema=%q records=%d", rep.Schema, len(rep.Records))
	}
}

func TestRunPerfBaselineGate(t *testing.T) {
	dir := t.TempDir()
	if err := silently(t, func() error { return runPerf(perfQuickOpts(), dir) }); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, perfArtifact)

	// Comparing a run against its own report must pass (tolerance absorbs
	// run-to-run noise at Trials=1 only statistically, so use a wide one).
	defer func() { perfBaseline, perfTol = "", 0.20 }()
	perfBaseline, perfTol = path, 25.0
	if err := silently(t, func() error { return runPerf(perfQuickOpts(), "") }); err != nil {
		t.Fatalf("self-comparison failed: %v", err)
	}

	// A doctored baseline with impossibly fast cells must trip the gate.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Records {
		rep.Records[i].NsPerOp = 1 // everything is a >tol regression now
		rep.Records[i].AllocsPerOp = 0
	}
	doctored, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	fast := filepath.Join(dir, "fast.json")
	if err := os.WriteFile(fast, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	perfBaseline, perfTol = fast, 0.20
	if err := silently(t, func() error { return runPerf(perfQuickOpts(), "") }); err == nil {
		t.Fatal("regression against doctored baseline not detected")
	}

	// A missing baseline file is an error, not a silent pass.
	perfBaseline = filepath.Join(dir, "nope.json")
	if err := silently(t, func() error { return runPerf(perfQuickOpts(), "") }); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// TestCheckedInPerfBaselineParses: the repository-root perf baseline that
// CI gates against must stay a valid report for the current schema.
func TestCheckedInPerfBaselineParses(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("..", "..", perfArtifact))
	if err != nil {
		t.Fatalf("checked-in baseline missing: %v", err)
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bench.PerfSchema {
		t.Fatalf("baseline schema %q != %q", rep.Schema, bench.PerfSchema)
	}
	keys := map[string]bool{}
	for _, r := range rep.Records {
		keys[r.Key()] = true
	}
	// Every sweep cell must have a baseline counterpart, or the CI
	// comparison quietly loses coverage. PerfCellKeys enumerates the fixed
	// cell list without running any attack.
	for _, k := range bench.PerfCellKeys() {
		if !keys[k] {
			t.Errorf("cell %s has no baseline record; regenerate %s", k, perfArtifact)
		}
	}
}

// TestProfileFlagsSmoke drives the -cpuprofile / -memprofile plumbing end
// to end: profile a real (quick) figure run and verify both files come out
// non-empty with the pprof gzip magic, exactly as `go tool pprof` expects.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")

	stop, err := startCPUProfile(cpu)
	if err != nil {
		t.Fatalf("startCPUProfile: %v", err)
	}
	if err := silently(t, func() error { return runFig2(quickOpts(), "") }); err != nil {
		stop()
		t.Fatal(err)
	}
	stop()
	if err := writeMemProfile(mem); err != nil {
		t.Fatalf("writeMemProfile: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if len(blob) < 2 || blob[0] != 0x1f || blob[1] != 0x8b {
			t.Fatalf("%s: %d bytes, not a gzipped pprof profile", p, len(blob))
		}
	}

	// The empty-path no-ops must stay no-ops (main calls them uncondition-
	// ally), and a bogus path must surface as an error, not a silent skip.
	if stop, err := startCPUProfile(""); err != nil {
		t.Fatalf("empty cpuprofile path: %v", err)
	} else {
		stop()
	}
	if err := writeMemProfile(""); err != nil {
		t.Fatalf("empty memprofile path: %v", err)
	}
	if _, err := startCPUProfile(filepath.Join(dir, "no", "such", "dir", "x")); err == nil {
		t.Fatal("startCPUProfile accepted an uncreatable path")
	}
	if err := writeMemProfile(filepath.Join(dir, "no", "such", "dir", "x")); err == nil {
		t.Fatal("writeMemProfile accepted an uncreatable path")
	}
}

func TestCSVDeterminism(t *testing.T) {
	// Same seed → byte-identical CSV: the reproducibility guarantee
	// EXPERIMENTS.md relies on.
	read := func() []byte {
		dir := t.TempDir()
		if err := silently(t, func() error { return runFig5(quickOpts(), dir) }); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := read(), read()
	if string(a) != string(b) {
		t.Fatal("fig5 CSV differs across identical runs")
	}
}
