// Command lispoison generates key datasets, mounts the paper's poisoning
// attacks against them, evaluates the damage, and runs the TRIM defense —
// all on plain text key files (one decimal key per line).
//
// Subcommands:
//
//	lispoison gen    -dist uniform -n 10000 -domain 1000000 -o keys.txt
//	lispoison attack -in keys.txt -percent 10 -o poison.txt            # regression attack
//	lispoison attack -in keys.txt -percent 10 -modelsize 100 -o p.txt  # RMI attack
//	lispoison online -in keys.txt -epochs 8 -percent 2 -policy buffer:256 -o p.txt
//	lispoison serve  -in keys.txt -epochs 6 -percent 2 -shards 4 -workload zipf:1.1:90
//	lispoison churn  -in keys.txt -epochs 6 -percent 2 -shards 4 -policy buffer:64 -cost linear:10:25:100
//	lispoison cascade -in keys.txt -epochs 6 -percent 2 -leaf 32 -workload zipf:1.1:85
//	lispoison throughput -in keys.txt -epochs 5 -percent 2 -readers 4 -cost fixed:40
//	lispoison eval   -clean keys.txt -poison poison.txt [-modelsize 100]
//	lispoison defend -in poisoned.txt -clean-count 10000 -o kept.txt
//	lispoison defense -in keys.txt -scenario serve -chain density:8:3|dupmass:3:3 -rate 4:20 -sources 8
//
// The online subcommand mounts the dynamic-index scenario: the attacker
// injects -percent (of the input keys) poison keys PER EPOCH into an
// updatable index running the given retrain -policy (manual | every:K |
// buffer:K), optionally interleaved with -arrivals honest inserts per
// epoch, and prints the per-epoch damage trajectory.
//
// The serve subcommand mounts the serving scenario: the same per-epoch
// attacker against a -shards-way sharded index while an honest population
// drives a -workload mix (uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]) of
// reads and writes; the per-epoch table adds probe costs, shard imbalance,
// and the worst per-shard loss ratio. Both serve and churn accept a -cost
// rebuild model (zero | fixed:F | linear:F:P[:U]) pricing each retrain in
// logical ticks on the background-retrain pipeline.
//
// The churn subcommand mounts the retrain-churn scenario: the attacker
// drip-feeds keys into the one shard where each key buys the most rebuild
// work, and the per-epoch table reports stale-read fractions, publish
// latency in ticks, and the loss ratio against the clean counterfactual.
//
// The cascade subcommand mounts the split-cascade scenario against the
// gapped-array (ALEX-style) index: the attacker drip-feeds keys into the
// densest leaf, where inserts shift the longest occupied runs and force
// splits — and, past the fanout limit, full rebuild cascades. The per-epoch
// table reports the structural cost (slot writes) of victim vs clean, the
// cost ratio, and the damage score.
//
// The throughput subcommand runs the goroutine-concurrent serving plane
// (-readers reader goroutines off immutable snapshots, one writer, true
// background retrains) clean vs poisoned and prints per-epoch tail-latency
// percentiles (p50/p99/p999 in probes — identical for any -readers value)
// plus wall-clock ops/sec.
//
// Every command is deterministic given -seed (throughput's ops/sec figures
// are wall-clock; every other column is deterministic).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"cdfpoison"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "online":
		err = cmdOnline(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "churn":
		err = cmdChurn(os.Args[2:])
	case "cascade":
		err = cmdCascade(os.Args[2:])
	case "throughput":
		err = cmdThroughput(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "defend":
		err = cmdDefend(os.Args[2:])
	case "defense":
		err = cmdDefense(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lispoison: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lispoison: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lispoison <gen|attack|online|serve|churn|cascade|throughput|eval|defend|defense> [flags]

  gen        generate a key dataset (uniform|normal|lognormal|salaries|osm)
  attack     poison a key file (linear regression on CDF, or two-stage RMI)
  online     drip-feed poison into an updatable index across retrain cycles
  serve      poison a sharded serving index under an honest read/write load
  churn      maximize retrain churn and stale windows on the rebuild pipeline
  cascade    force splits and rebuild cascades on the gapped-array index
  throughput poison the concurrent serving plane; report tail-latency SLOs
  eval       measure ratio loss of a poisoned file against the clean file
  defend     run the TRIM defense on a poisoned file
  defense    arm the online defense plane against one scenario; report the trade-off

Run 'lispoison <subcommand> -h' for flags.`)
	os.Exit(2)
}

func readKeys(path string) (cdfpoison.KeySet, error) {
	f, err := os.Open(path)
	if err != nil {
		return cdfpoison.KeySet{}, err
	}
	defer f.Close()
	return cdfpoison.ReadKeysText(f)
}

func writeKeys(path string, ks cdfpoison.KeySet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ks.WriteText(f)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dist := fs.String("dist", "uniform", "uniform|normal|lognormal|salaries|osm")
	n := fs.Int("n", 10000, "number of keys (ignored for salaries/osm full sets)")
	domain := fs.Int64("domain", 1_000_000, "key universe size m (synthetic dists)")
	mu := fs.Float64("mu", 0, "log-normal mu")
	sigma := fs.Float64("sigma", 2, "log-normal sigma")
	seed := fs.Uint64("seed", 42, "rng seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	rng := cdfpoison.NewRNG(*seed)
	var (
		ks  cdfpoison.KeySet
		err error
	)
	switch *dist {
	case "uniform":
		ks, err = cdfpoison.UniformKeys(rng, *n, *domain)
	case "normal":
		ks, err = cdfpoison.NormalKeys(rng, *n, *domain)
	case "lognormal":
		ks, err = cdfpoison.LogNormalKeys(rng, *n, *domain, *mu, *sigma)
	case "salaries":
		ks, err = cdfpoison.MiamiSalaries(rng)
	case "osm":
		ks, err = cdfpoison.OSMLatitudes(rng)
	default:
		return fmt.Errorf("gen: unknown distribution %q", *dist)
	}
	if err != nil {
		return fmt.Errorf("gen: %w", err)
	}
	if err := writeKeys(*out, ks); err != nil {
		return fmt.Errorf("gen: %w", err)
	}
	fmt.Printf("wrote %d keys (min %d, max %d) to %s\n", ks.Len(), ks.Min(), ks.Max(), *out)
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	percent := fs.Float64("percent", 10, "poisoning percentage φ·100")
	modelSize := fs.Int("modelsize", 0, "RMI second-stage model size; 0 = plain regression attack")
	models := fs.Int("models", 0, "RMI fanout N (alternative to -modelsize)")
	alpha := fs.Float64("alpha", 3, "per-model poisoning threshold multiplier (RMI)")
	removal := fs.Bool("removal", false, "mount the deletion adversary instead of injection")
	workers := fs.Int("workers", 0, "worker pool size for the attack: 0 = one per core, 1 = sequential; results are identical for any value (injection attacks only)")
	out := fs.String("o", "", "output file for poison (or removed) keys (required)")
	outAll := fs.String("o-poisoned", "", "optional output file for the full poisoned (or surviving) key set")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("attack: -in and -o are required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}

	if *removal {
		budget := int(float64(ks.Len()) * *percent / 100)
		g, err := cdfpoison.GreedyRemoval(ks, budget)
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		removed, err := cdfpoison.NewKeySetStrict(g.Removed)
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		fmt.Printf("removal attack: %d keys deleted, MSE %.6g -> %.6g (ratio %.2f×)\n",
			len(g.Removed), g.CleanLoss, g.FinalLoss(), g.RatioLoss())
		if err := writeKeys(*out, removed); err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		fmt.Printf("wrote %d removed keys to %s\n", removed.Len(), *out)
		if *outAll != "" {
			if err := writeKeys(*outAll, g.Remaining); err != nil {
				return fmt.Errorf("attack: %w", err)
			}
			fmt.Printf("wrote %d surviving keys to %s\n", g.Remaining.Len(), *outAll)
		}
		return nil
	}

	var poison cdfpoison.KeySet
	var poisoned cdfpoison.KeySet
	if *modelSize == 0 && *models == 0 {
		budget := int(float64(ks.Len()) * *percent / 100)
		g, err := cdfpoison.GreedyMultiPoint(ks, budget, cdfpoison.WithParallelism(*workers))
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		poison, err = cdfpoison.NewKeySetStrict(g.Poison)
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		poisoned = g.Poisoned
		fmt.Printf("regression attack: %d poison keys, MSE %.6g -> %.6g (ratio %.2f×)\n",
			len(g.Poison), g.CleanLoss, g.FinalLoss(), g.RatioLoss())
		if g.BlocksTotal > 0 {
			fmt.Printf("pruned scan: %d candidates over %d/%d gap blocks (%.1f%% visited)\n",
				g.Candidates, g.BlocksVisited, g.BlocksTotal,
				100*float64(g.BlocksVisited)/float64(g.BlocksTotal))
		}
	} else {
		N := *models
		if N == 0 {
			N = ks.Len() / *modelSize
			if N < 1 {
				N = 1
			}
		}
		res, err := cdfpoison.RMIAttack(ks, cdfpoison.RMIAttackOptions{
			NumModels: N, Percent: *percent, Alpha: *alpha,
		}, cdfpoison.WithParallelism(*workers))
		if err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		poison = res.Poison
		poisoned = ks.Union(res.Poison)
		fmt.Printf("RMI attack: N=%d models, %d/%d poison keys injected, L_RMI %.6g -> %.6g (ratio %.2f×), %d exchanges\n",
			N, res.Injected, res.Budget, res.CleanRMILoss, res.PoisonedRMILoss, res.RMIRatio(), res.Moves)
	}
	if err := writeKeys(*out, poison); err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	fmt.Printf("wrote %d poison keys to %s\n", poison.Len(), *out)
	if *outAll != "" {
		if err := writeKeys(*outAll, poisoned); err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		fmt.Printf("wrote %d poisoned keys to %s\n", poisoned.Len(), *outAll)
	}
	return nil
}

func cmdOnline(args []string) error {
	fs := flag.NewFlagSet("online", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	epochs := fs.Int("epochs", 8, "number of attack epochs (retrain cycles)")
	percent := fs.Float64("percent", 2, "per-EPOCH poisoning percentage of the input keys")
	policyStr := fs.String("policy", "manual", "retrain policy: manual | every:K | buffer:K")
	arrivals := fs.Int("arrivals", 0, "honest inserts per epoch, drawn uniformly over the key range")
	oracle := fs.String("oracle", "regression", "per-epoch attack oracle: regression | rmi")
	models := fs.Int("models", 0, "RMI fanout N (rmi oracle)")
	alpha := fs.Float64("alpha", 3, "per-model poisoning threshold multiplier (rmi oracle)")
	seed := fs.Uint64("seed", 42, "rng seed for the arrival stream")
	workers := fs.Int("workers", 0, "worker pool size: 0 = one per core, 1 = sequential; results are identical for any value")
	noBatch := fs.Bool("no-batch-eval", false, "evaluate probe columns with the per-key lookup loop instead of the sorted-batch kernel; every column is identical either way")
	out := fs.String("o", "", "optional output file for the injected poison keys")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("online: -in is required")
	}
	if *epochs < 1 {
		return fmt.Errorf("online: -epochs must be >= 1, got %d", *epochs)
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	policy, err := cdfpoison.ParseRetrainPolicy(*policyStr)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	opts := cdfpoison.OnlineOptions{
		Epochs:      *epochs,
		EpochBudget: int(float64(ks.Len()) * *percent / 100),
		Policy:      policy,
	}
	switch *oracle {
	case "regression":
	case "rmi":
		opts.Oracle = cdfpoison.OracleRMI
		N := *models
		if N == 0 {
			N = ks.Len() / 100
			if N < 1 {
				N = 1
			}
		}
		opts.RMI = cdfpoison.RMIAttackOptions{NumModels: N, Alpha: *alpha}
	default:
		return fmt.Errorf("online: unknown oracle %q (want regression | rmi)", *oracle)
	}
	if *arrivals > 0 {
		rng := cdfpoison.NewRNG(*seed)
		span := ks.Max() - ks.Min() + 1
		opts.Arrivals = make([][]int64, *epochs)
		for e := range opts.Arrivals {
			for i := 0; i < *arrivals; i++ {
				opts.Arrivals[e] = append(opts.Arrivals[e], ks.Min()+rng.Int63n(span))
			}
		}
	}
	execOpts := []cdfpoison.AttackOption{cdfpoison.WithParallelism(*workers)}
	if *noBatch {
		execOpts = append(execOpts, cdfpoison.WithPerKeyEval())
	}
	res, err := cdfpoison.OnlinePoisonAttack(ks, opts, execOpts...)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	fmt.Printf("online attack: policy=%s, %d keys/epoch over %d epochs (%d honest arrivals/epoch)\n",
		policy, opts.EpochBudget, *epochs, *arrivals)
	fmt.Printf("%5s %9s %7s %9s %7s %10s %12s %12s\n",
		"epoch", "injected", "buffer", "retrains", "ratio", "displaced", "clean_prob", "pois_prob")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %9d %7d %9d %7.2f %10d %12.2f %12.2f\n",
			e.Epoch, e.Injected, e.BufferLen, e.Retrains, e.RatioLoss,
			e.Displaced, e.CleanProbes, e.PoisonedProbes)
	}
	fmt.Printf("final ratio %.2f× (max %.2f×), %d poison keys, %d retrains\n",
		res.FinalRatio(), res.MaxRatio(), res.Poison.Len(), res.Retrains)
	fmt.Printf("probe eval: %s\n", evalPath(res.Eval))
	if *out != "" {
		if err := writeKeys(*out, res.Poison); err != nil {
			return fmt.Errorf("online: %w", err)
		}
		fmt.Printf("wrote %d poison keys to %s\n", res.Poison.Len(), *out)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	epochs := fs.Int("epochs", 6, "number of serving epochs")
	percent := fs.Float64("percent", 2, "per-EPOCH poisoning percentage of the input keys")
	shards := fs.Int("shards", 4, "shard count (1 = unsharded)")
	policyStr := fs.String("policy", "manual", "per-shard retrain policy: manual | every:K | buffer:K")
	costStr := fs.String("cost", "zero", "rebuild cost model: zero | fixed:F | linear:F:P[:U] (zero = synchronous)")
	workloadStr := fs.String("workload", "zipf:1.1:90", "honest mix: uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]")
	ops := fs.Int("ops", 0, "honest operations per epoch (default 10% of the input keys)")
	seed := fs.Uint64("seed", 42, "rng seed for the operation stream")
	workers := fs.Int("workers", 0, "worker pool size: 0 = one per core, 1 = sequential; results are identical for any value")
	noBatch := fs.Bool("no-batch-eval", false, "evaluate probe columns with the per-key lookup loop instead of the sorted-batch kernel; every column is identical either way")
	out := fs.String("o", "", "optional output file for the injected poison keys")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("serve: -in is required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	policy, err := cdfpoison.ParseRetrainPolicy(*policyStr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	cost, err := cdfpoison.ParseRebuildCost(*costStr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	mix, err := cdfpoison.ParseWorkload(*workloadStr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	opsPerEpoch := *ops
	if opsPerEpoch == 0 {
		opsPerEpoch = ks.Len() / 10
	}
	execOpts := []cdfpoison.AttackOption{cdfpoison.WithParallelism(*workers)}
	if *noBatch {
		execOpts = append(execOpts, cdfpoison.WithPerKeyEval())
	}
	res, err := cdfpoison.ServeAttack(ks, cdfpoison.ServeOptions{
		Epochs:      *epochs,
		OpsPerEpoch: opsPerEpoch,
		EpochBudget: int(float64(ks.Len()) * *percent / 100),
		Shards:      *shards,
		Policy:      policy,
		Workload:    mix,
		Seed:        *seed,
		RebuildCost: cost,
	}, execOpts...)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Printf("serve attack: %d shards, policy=%s, workload=%s, %d ops/epoch over %d epochs\n",
		*shards, policy, mix, opsPerEpoch, *epochs)
	fmt.Printf("%5s %6s %7s %9s %7s %9s %7s %10s %12s %12s %10s\n",
		"epoch", "reads", "writes", "injected", "buffer", "retrains", "ratio",
		"imbalance", "clean_prob", "pois_prob", "max_shard")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %6d %7d %9d %7d %9d %7.2f %10.2f %12.2f %12.2f %10.2f\n",
			e.Epoch, e.Reads, e.Writes, e.Injected, e.BufferLen, e.Retrains,
			e.RatioLoss, e.Imbalance, e.CleanProbes, e.PoisonedProbes, e.MaxShardRatio())
	}
	fmt.Printf("final ratio %.2f× (max %.2f×, worst shard %.2f×), %d poison keys, %d retrains\n",
		res.FinalRatio(), res.MaxRatio(), res.MaxShardRatio(), res.Poison.Len(), res.Retrains)
	fmt.Printf("probe eval: %s\n", evalPath(res.Eval))
	if *out != "" {
		if err := writeKeys(*out, res.Poison); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fmt.Printf("wrote %d poison keys to %s\n", res.Poison.Len(), *out)
	}
	return nil
}

func cmdChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	epochs := fs.Int("epochs", 6, "number of serving epochs")
	percent := fs.Float64("percent", 2, "per-EPOCH poisoning percentage of the input keys")
	shards := fs.Int("shards", 4, "shard count (1 = unsharded)")
	policyStr := fs.String("policy", "buffer:64", "per-shard retrain policy: manual | every:K | buffer:K")
	costStr := fs.String("cost", "linear:10:25:100", "rebuild cost model: zero | fixed:F | linear:F:P[:U]")
	workloadStr := fs.String("workload", "zipf:1.1:90", "honest mix: uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]")
	ops := fs.Int("ops", 0, "honest operations per epoch (default 10% of the input keys)")
	seed := fs.Uint64("seed", 42, "rng seed for the operation stream")
	workers := fs.Int("workers", 0, "worker pool size: 0 = one per core, 1 = sequential; results are identical for any value")
	out := fs.String("o", "", "optional output file for the injected poison keys")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("churn: -in is required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	policy, err := cdfpoison.ParseRetrainPolicy(*policyStr)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	cost, err := cdfpoison.ParseRebuildCost(*costStr)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	mix, err := cdfpoison.ParseWorkload(*workloadStr)
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	opsPerEpoch := *ops
	if opsPerEpoch == 0 {
		opsPerEpoch = ks.Len() / 10
	}
	res, err := cdfpoison.ChurnAttack(ks, cdfpoison.ChurnOptions{
		Epochs:      *epochs,
		OpsPerEpoch: opsPerEpoch,
		EpochBudget: int(float64(ks.Len()) * *percent / 100),
		Shards:      *shards,
		Policy:      policy,
		Workload:    mix,
		Seed:        *seed,
		Cost:        cost,
	}, cdfpoison.WithParallelism(*workers))
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	fmt.Printf("churn attack: %d shards, policy=%s, cost=%s, workload=%s, %d ops/epoch over %d epochs\n",
		*shards, policy, cost, mix, opsPerEpoch, *epochs)
	fmt.Printf("%5s %6s %9s %7s %9s %9s %10s %10s %8s %8s %7s %11s\n",
		"epoch", "shard", "injected", "stale%", "publish", "coalesce", "lat_mean", "lat_max",
		"rebuild", "stale_t", "ratio", "probe_ratio")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %6d %9d %6.1f%% %9d %9d %10.1f %10d %8d %8d %7.2f %11.2f\n",
			e.Epoch, e.TargetShard, e.Injected, e.StaleFrac*100, e.Publishes, e.Coalesced,
			e.MeanPublishLatency, e.MaxPublishLatency, e.RebuildTicks, e.StaleTicks,
			e.RatioLoss, e.ProbeRatio)
	}
	fmt.Printf("max stale fraction %.2f, max publish latency %d ticks, final ratio %.2f×, %d poison keys, %d retrains\n",
		res.MaxStaleFrac(), res.VictimChurn.MaxLatencyTicks, res.FinalRatio(),
		res.Poison.Len(), res.Retrains)
	if *out != "" {
		if err := writeKeys(*out, res.Poison); err != nil {
			return fmt.Errorf("churn: %w", err)
		}
		fmt.Printf("wrote %d poison keys to %s\n", res.Poison.Len(), *out)
	}
	return nil
}

func cmdCascade(args []string) error {
	fs := flag.NewFlagSet("cascade", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	epochs := fs.Int("epochs", 6, "number of serving epochs")
	percent := fs.Float64("percent", 2, "per-EPOCH poisoning percentage of the input keys")
	leaf := fs.Int("leaf", 0, "bulk-load leaf size of the gapped-array index (0 = default)")
	workloadStr := fs.String("workload", "zipf:1.1:85", "honest mix: uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]")
	ops := fs.Int("ops", 0, "honest operations per epoch (default 10% of the input keys)")
	seed := fs.Uint64("seed", 42, "rng seed for the operation stream")
	workers := fs.Int("workers", 0, "worker pool size: 0 = one per core, 1 = sequential; results are identical for any value")
	out := fs.String("o", "", "optional output file for the injected poison keys")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("cascade: -in is required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	mix, err := cdfpoison.ParseWorkload(*workloadStr)
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	opsPerEpoch := *ops
	if opsPerEpoch == 0 {
		opsPerEpoch = ks.Len() / 10
	}
	res, err := cdfpoison.CascadeAttack(ks, cdfpoison.CascadeOptions{
		Epochs:      *epochs,
		OpsPerEpoch: opsPerEpoch,
		EpochBudget: int(float64(ks.Len()) * *percent / 100),
		LeafTarget:  *leaf,
		Workload:    mix,
		Seed:        *seed,
	}, cdfpoison.WithParallelism(*workers))
	if err != nil {
		return fmt.Errorf("cascade: %w", err)
	}
	fmt.Printf("cascade attack: leaf=%d, workload=%s, %d ops/epoch over %d epochs\n",
		*leaf, mix, opsPerEpoch, *epochs)
	fmt.Printf("%5s %6s %9s %9s %11s %7s %9s %6s %11s %12s %9s %12s %11s\n",
		"epoch", "node", "density", "injected", "shift_wr", "splits", "cascades",
		"nodes", "struct_cost", "clean_cost", "ratio", "damage", "probe_ratio")
	for _, e := range res.Epochs {
		fmt.Printf("%5d %6d %9.2f %9d %11d %7d %9d %6d %11d %12d %9.2f %12.0f %11.2f\n",
			e.Epoch, e.TargetNode, e.TargetDensity, e.Injected, e.ShiftWrites,
			e.Splits, e.Cascades, e.Nodes, e.StructCost, e.CleanStructCost,
			e.StructRatio, e.DamageScore, e.ProbeRatio)
	}
	fmt.Printf("final struct ratio %.2f× (victim cost %d vs clean %d), %d splits (+%d cascades) vs clean %d (+%d), %d poison keys\n",
		res.FinalStructRatio(), res.VictimStruct.Cost(), res.CleanStruct.Cost(),
		res.VictimStruct.Splits, res.VictimStruct.Cascades,
		res.CleanStruct.Splits, res.CleanStruct.Cascades, res.Poison.Len())
	if *out != "" {
		if err := writeKeys(*out, res.Poison); err != nil {
			return fmt.Errorf("cascade: %w", err)
		}
		fmt.Printf("wrote %d poison keys to %s\n", res.Poison.Len(), *out)
	}
	return nil
}

func cmdThroughput(args []string) error {
	fs := flag.NewFlagSet("throughput", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	epochs := fs.Int("epochs", 5, "number of serving epochs")
	percent := fs.Float64("percent", 2, "per-EPOCH poisoning percentage of the input keys")
	shards := fs.Int("shards", 4, "shard count (1 = unsharded)")
	policyStr := fs.String("policy", "buffer:64", "per-shard retrain policy: manual | every:K | buffer:K")
	costStr := fs.String("cost", "fixed:40", "rebuild cost model: zero | fixed:F | linear:F:P[:U]")
	workloadStr := fs.String("workload", "zipf:1.1:90", "honest mix: uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]")
	ops := fs.Int("ops", 0, "honest operations per epoch (default 10% of the input keys)")
	seed := fs.Uint64("seed", 42, "rng seed for the operation stream")
	readers := fs.Int("readers", 0, "reader goroutines: 0 = one per core; percentiles are identical for any value")
	batch := fs.Int("batch", 0, "reads per dispatch batch (0 = default); does not affect any metric")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("throughput: -in is required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	policy, err := cdfpoison.ParseRetrainPolicy(*policyStr)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	cost, err := cdfpoison.ParseRebuildCost(*costStr)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	mix, err := cdfpoison.ParseWorkload(*workloadStr)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	opsPerEpoch := *ops
	if opsPerEpoch == 0 {
		opsPerEpoch = ks.Len() / 10
	}
	domain := ks.Max() + ks.Max()/10 + 1
	base := cdfpoison.ServingScenarioOptions{
		Epochs:      *epochs,
		OpsPerEpoch: opsPerEpoch,
		Workload:    mix,
		Domain:      domain,
		Seed:        *seed,
		Cost:        cost,
		Oracle:      cdfpoison.GreedyPoisonOracle(),
	}
	plane := cdfpoison.ServingPlaneOptions{Readers: *readers, BatchSize: *batch}
	run := func(budget int) ([]cdfpoison.ServingEpochMetrics, float64, error) {
		b, err := cdfpoison.NewShardedIndex(ks, *shards, policy)
		if err != nil {
			return nil, 0, err
		}
		o := base
		o.EpochBudget = budget
		start := time.Now()
		m, err := cdfpoison.ServeScenarioConcurrent(context.Background(), b, o, plane)
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start)
		total := 0
		for _, e := range m {
			total += e.Reads + e.Writes + e.Injected
		}
		return m, float64(total) / elapsed.Seconds(), nil
	}
	clean, cleanOps, err := run(0)
	if err != nil {
		return fmt.Errorf("throughput: clean run: %w", err)
	}
	budget := int(float64(ks.Len()) * *percent / 100)
	poisoned, poisonedOps, err := run(budget)
	if err != nil {
		return fmt.Errorf("throughput: poisoned run: %w", err)
	}
	fmt.Printf("throughput scenario: %d shards, policy=%s, cost=%s, workload=%s, %d ops/epoch over %d epochs, budget %d/epoch\n",
		*shards, policy, cost, mix, opsPerEpoch, *epochs, budget)
	fmt.Printf("%5s %9s %9s %10s %11s %9s %10s %11s %8s %7s %7s\n",
		"epoch", "clean_p50", "clean_p99", "clean_p999",
		"poison_p50", "poison_p99", "poison_p999", "stale_frac", "injected", "ratio", "p999×")
	for i, p := range poisoned {
		c := clean[i]
		fmt.Printf("%5d %9d %9d %10d %11d %9d %10d %11.3f %8d %7.2f %7.2f\n",
			p.Epoch, c.P50, c.P99, c.P999, p.P50, p.P99, p.P999,
			p.StaleFrac, p.Injected, safeRatio(p.ContentLoss, c.ContentLoss),
			safeRatio(float64(p.P999), float64(c.P999)))
	}
	fmt.Printf("wall-clock (machine-dependent): clean %.0f ops/s, poisoned %.0f ops/s, %d readers\n",
		cleanOps, poisonedOps, plane.WithDefaults().Readers)
	return nil
}

// evalPath names the probe-evaluation path a scenario's EvalStats records
// — sorted-batch kernel by default, per-key under -no-batch-eval.
func evalPath(s cdfpoison.EvalStats) string {
	if s.PerKeyKeys > 0 {
		return fmt.Sprintf("per-key loop, %d key evaluations (-no-batch-eval)", s.PerKeyKeys)
	}
	return fmt.Sprintf("sorted-batch kernel, %d key evaluations", s.BatchedKeys)
}

func safeRatio(poisoned, clean float64) float64 {
	if clean == 0 {
		if poisoned == 0 {
			return 1
		}
		return poisoned
	}
	return poisoned / clean
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	cleanPath := fs.String("clean", "", "clean key file (required)")
	poisonPath := fs.String("poison", "", "poison key file (required)")
	modelSize := fs.Int("modelsize", 0, "evaluate as RMI with this model size (0 = single regression)")
	fs.Parse(args)
	if *cleanPath == "" || *poisonPath == "" {
		return fmt.Errorf("eval: -clean and -poison are required")
	}
	clean, err := readKeys(*cleanPath)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	poison, err := readKeys(*poisonPath)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	poisoned := clean.Union(poison)
	if poisoned.Len() != clean.Len()+poison.Len() {
		return fmt.Errorf("eval: poison file overlaps the clean keys")
	}

	if *modelSize == 0 {
		cm, err := cdfpoison.FitCDF(clean)
		if err != nil {
			return fmt.Errorf("eval: %w", err)
		}
		pm, err := cdfpoison.FitCDF(poisoned)
		if err != nil {
			return fmt.Errorf("eval: %w", err)
		}
		fmt.Printf("clean:    %v\n", cm)
		fmt.Printf("poisoned: %v\n", pm)
		if cm.Loss > 0 {
			fmt.Printf("ratio loss: %.2f×\n", pm.Loss/cm.Loss)
		}
		return nil
	}
	fanout := clean.Len() / *modelSize
	if fanout < 1 {
		fanout = 1
	}
	cleanIdx, err := cdfpoison.BuildRMI(clean, cdfpoison.RMIConfig{Fanout: fanout})
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	poisIdx, err := cdfpoison.BuildRMI(poisoned, cdfpoison.RMIConfig{Fanout: fanout})
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	cs, ps := cleanIdx.Stats(), poisIdx.Stats()
	cleanProbes, _ := cleanIdx.AvgProbes(clean.Keys())
	poisProbes, _ := poisIdx.AvgProbes(clean.Keys())
	fmt.Printf("fanout %d models\n", fanout)
	fmt.Printf("second-stage MSE: %.6g -> %.6g (ratio %.2f×)\n",
		cs.SecondStageMSE, ps.SecondStageMSE, ps.SecondStageMSE/cs.SecondStageMSE)
	fmt.Printf("avg search window: %.1f -> %.1f\n", cs.AvgWindow, ps.AvgWindow)
	fmt.Printf("avg probes per lookup (legit keys): %.2f -> %.2f\n", cleanProbes, poisProbes)
	return nil
}

func cmdDefend(args []string) error {
	fs := flag.NewFlagSet("defend", flag.ExitOnError)
	in := fs.String("in", "", "poisoned key file (required)")
	cleanCount := fs.Int("clean-count", 0, "presumed number of clean keys (required)")
	restarts := fs.Int("restarts", 2, "TRIM random restarts")
	seed := fs.Uint64("seed", 42, "rng seed")
	out := fs.String("o", "", "output file for kept keys (required)")
	outRemoved := fs.String("o-removed", "", "optional output file for flagged keys")
	fs.Parse(args)
	if *in == "" || *out == "" || *cleanCount == 0 {
		return fmt.Errorf("defend: -in, -clean-count and -o are required")
	}
	poisoned, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("defend: %w", err)
	}
	res, err := cdfpoison.TrimDefense(poisoned, *cleanCount, cdfpoison.TrimOptions{
		Restarts: *restarts, Seed: *seed,
	})
	if err != nil {
		return fmt.Errorf("defend: %w", err)
	}
	fmt.Printf("TRIM kept %d keys (removed %d) in %d iterations (converged=%v)\n",
		res.Kept.Len(), res.Removed.Len(), res.Iterations, res.Converged)
	fmt.Printf("kept-set model: %v\n", res.Model)
	if err := writeKeys(*out, res.Kept); err != nil {
		return fmt.Errorf("defend: %w", err)
	}
	if *outRemoved != "" {
		if err := writeKeys(*outRemoved, res.Removed); err != nil {
			return fmt.Errorf("defend: %w", err)
		}
	}
	return nil
}

// cmdDefense mounts one attack scenario twice — undefended, then with the
// requested defense plane armed — and prints the damage reduction the
// defense bought against the honest-traffic overhead it charged. The same
// numbers, swept across scenarios and tiers, are `lisbench -fig defense`.
func cmdDefense(args []string) error {
	fs := flag.NewFlagSet("defense", flag.ExitOnError)
	in := fs.String("in", "", "input key file (required)")
	scenario := fs.String("scenario", "static", "attack scenario to defend: static | online | serve | churn | cascade")
	chainStr := fs.String("chain", "density:8:3|dupmass:3:3", "detector chain spec: density:W:R | dupmass:W:C | gapout:R | lossspike:R, '|'-separated; none disables")
	fitterStr := fs.String("fitter", "", "robust CDF fitter replacing OLS in retrains: ols | theilsen | trimmed:P (empty = keep OLS)")
	rateStr := fs.String("rate", "", "per-source write rate limit BUDGET:WINDOW (empty = no limiter)")
	sources := fs.Int("sources", 0, "spread honest writes round-robin over this many sources (the attacker gets its own)")
	balanced := fs.Bool("balanced", false, "use the density-balancing split policy (cascade scenario)")
	epochs := fs.Int("epochs", 4, "scenario epochs (online|serve|churn|cascade)")
	percent := fs.Float64("percent", 5, "attacker budget as %% of the input keys (per epoch; one-shot for static)")
	ops := fs.Int("ops", 0, "honest operations per epoch — honest writes total for static (default 10%% of the input keys)")
	shards := fs.Int("shards", 4, "shard count (serve|churn)")
	policyStr := fs.String("policy", "", "retrain policy: manual | every:K | buffer:K (default manual; buffer:K/8 for churn)")
	costStr := fs.String("cost", "fixed:30", "rebuild cost model for churn: zero | fixed:F | linear:F:P[:U]")
	workloadStr := fs.String("workload", "zipf:1.1:85", "honest mix: uniform[:R] | zipf[:T[:R]] | hotspot[:H[:R]]")
	seed := fs.Uint64("seed", 42, "rng seed for the operation stream")
	workers := fs.Int("workers", 0, "worker pool size: 0 = one per core, 1 = sequential; results are identical for any value")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("defense: -in is required")
	}
	ks, err := readKeys(*in)
	if err != nil {
		return fmt.Errorf("defense: %w", err)
	}

	spec := cdfpoison.ScenarioDefense{Sources: *sources, BalancedSplit: *balanced}
	if *chainStr != "" {
		if spec.Policies, err = cdfpoison.ParseGuardPolicyChain(*chainStr); err != nil {
			return fmt.Errorf("defense: %w", err)
		}
	}
	if *fitterStr != "" {
		if spec.Fitter, err = cdfpoison.ParseCDFFitter(*fitterStr); err != nil {
			return fmt.Errorf("defense: %w", err)
		}
	}
	if *rateStr != "" {
		if n, err := fmt.Sscanf(*rateStr, "%d:%d", &spec.RateBudget, &spec.RateWindow); n != 2 || err != nil {
			return fmt.Errorf("defense: -rate wants BUDGET:WINDOW, got %q", *rateStr)
		}
	}

	mix, err := cdfpoison.ParseWorkload(*workloadStr)
	if err != nil {
		return fmt.Errorf("defense: %w", err)
	}
	cost, err := cdfpoison.ParseRebuildCost(*costStr)
	if err != nil {
		return fmt.Errorf("defense: %w", err)
	}
	policySpec := *policyStr
	if policySpec == "" {
		policySpec = "manual"
		if *scenario == "churn" {
			policySpec = fmt.Sprintf("buffer:%d", max(ks.Len()/8/max(*shards, 1), 2))
		}
	}
	policy, err := cdfpoison.ParseRetrainPolicy(policySpec)
	if err != nil {
		return fmt.Errorf("defense: %w", err)
	}
	budget := int(float64(ks.Len()) * *percent / 100)
	opsPerEpoch := *ops
	if opsPerEpoch == 0 {
		opsPerEpoch = ks.Len() / 10
	}

	ratio := func(victim, clean float64) float64 {
		switch {
		case clean != 0:
			return victim / clean
		case victim == 0:
			return 1
		default:
			return math.Inf(1)
		}
	}
	run := func(d cdfpoison.ScenarioDefense) (float64, cdfpoison.ScenarioDefenseReport, error) {
		w := cdfpoison.WithParallelism(*workers)
		switch *scenario {
		case "static":
			res, err := cdfpoison.StaticScenarioAttack(ks, cdfpoison.StaticAttackOptions{
				Budget: budget, HonestWrites: opsPerEpoch,
				Domain: ks.Max() + 1, Seed: *seed, Defense: d,
			}, w)
			if err != nil {
				return 0, cdfpoison.ScenarioDefenseReport{}, err
			}
			return res.RatioLoss, res.Defense, nil
		case "online":
			res, err := cdfpoison.OnlinePoisonAttack(ks, cdfpoison.OnlineOptions{
				Epochs: *epochs, EpochBudget: budget, Policy: policy, Defense: d,
			}, w)
			if err != nil {
				return 0, cdfpoison.ScenarioDefenseReport{}, err
			}
			return res.FinalRatio(), res.Defense, nil
		case "serve":
			res, err := cdfpoison.ServeAttack(ks, cdfpoison.ServeOptions{
				Epochs: *epochs, OpsPerEpoch: opsPerEpoch, EpochBudget: budget,
				Shards: *shards, Policy: policy, Workload: mix, Seed: *seed, Defense: d,
			}, w)
			if err != nil {
				return 0, cdfpoison.ScenarioDefenseReport{}, err
			}
			return res.FinalRatio(), res.Defense, nil
		case "churn":
			res, err := cdfpoison.ChurnAttack(ks, cdfpoison.ChurnOptions{
				Epochs: *epochs, OpsPerEpoch: opsPerEpoch, EpochBudget: budget,
				Shards: *shards, Policy: policy, Workload: mix, Seed: *seed,
				Cost: cost, Defense: d,
			}, w)
			if err != nil {
				return 0, cdfpoison.ScenarioDefenseReport{}, err
			}
			return ratio(float64(res.VictimChurn.RebuildTicks), float64(res.CleanChurn.RebuildTicks)), res.Defense, nil
		case "cascade":
			res, err := cdfpoison.CascadeAttack(ks, cdfpoison.CascadeOptions{
				Epochs: *epochs, OpsPerEpoch: opsPerEpoch, EpochBudget: budget,
				Workload: mix, Seed: *seed, Defense: d,
			}, w)
			if err != nil {
				return 0, cdfpoison.ScenarioDefenseReport{}, err
			}
			return res.FinalStructRatio(), res.Defense, nil
		default:
			return 0, cdfpoison.ScenarioDefenseReport{}, fmt.Errorf("unknown scenario %q (want static | online | serve | churn | cascade)", *scenario)
		}
	}

	bare, _, err := run(cdfpoison.ScenarioDefense{})
	if err != nil {
		return fmt.Errorf("defense: undefended %s: %w", *scenario, err)
	}
	defended, rep, err := run(spec)
	if err != nil {
		return fmt.Errorf("defense: defended %s: %w", *scenario, err)
	}

	fmt.Printf("%s scenario, attacker budget %d keys (%.3g%%)\n", *scenario, budget, *percent)
	fmt.Printf("  undefended damage ratio  %8.3f\n", bare)
	fmt.Printf("  defended damage ratio    %8.3f\n", defended)
	fmt.Printf("  damage reduction         %8.3fx (on the excess over 1)\n",
		ratio(math.Max(bare-1, 0), math.Max(defended-1, 0)))
	fmt.Printf("  poison blocked           %8.1f%% (%d flagged, %d throttled of %d attempts)\n",
		rep.PoisonBlockedFrac()*100, rep.FlaggedPoison, rep.ThrottledPoison, rep.PoisonAttempts)
	fmt.Printf("  honest overhead          %8.1f%% (clean twin: %d flagged, %d throttled of %d attempts)\n",
		rep.HonestBlockedFrac()*100, rep.CleanFlagged, rep.CleanThrottled, rep.CleanAttempts)
	return nil
}
