package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdfpoison"
)

// The subcommand functions are exercised directly with temp files, covering
// the full gen → attack → eval → defend pipeline without spawning processes.

func tmpPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestGenAttackEvalDefendPipeline(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	poisonFile := tmpPath(t, "poison.txt")
	allFile := tmpPath(t, "all.txt")
	keptFile := tmpPath(t, "kept.txt")

	if err := cmdGen([]string{"-dist", "uniform", "-n", "500", "-domain", "10000", "-seed", "7", "-o", keysFile}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	ks, err := readKeys(keysFile)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Len() != 500 {
		t.Fatalf("generated %d keys", ks.Len())
	}

	if err := cmdAttack([]string{"-in", keysFile, "-percent", "10", "-o", poisonFile, "-o-poisoned", allFile}); err != nil {
		t.Fatalf("attack: %v", err)
	}
	poison, err := readKeys(poisonFile)
	if err != nil {
		t.Fatal(err)
	}
	if poison.Len() != 50 {
		t.Fatalf("poison count %d, want 50", poison.Len())
	}
	all, err := readKeys(allFile)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 550 {
		t.Fatalf("poisoned set %d, want 550", all.Len())
	}

	if err := cmdEval([]string{"-clean", keysFile, "-poison", poisonFile}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdEval([]string{"-clean", keysFile, "-poison", poisonFile, "-modelsize", "50"}); err != nil {
		t.Fatalf("eval rmi: %v", err)
	}

	if err := cmdDefend([]string{"-in", allFile, "-clean-count", "500", "-o", keptFile}); err != nil {
		t.Fatalf("defend: %v", err)
	}
	kept, err := readKeys(keptFile)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Len() != 500 {
		t.Fatalf("kept %d, want 500", kept.Len())
	}
}

func TestGenAllDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "normal", "lognormal"} {
		out := tmpPath(t, dist+".txt")
		if err := cmdGen([]string{"-dist", dist, "-n", "300", "-domain", "30000", "-o", out}); err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		ks, err := readKeys(out)
		if err != nil {
			t.Fatal(err)
		}
		if ks.Len() != 300 {
			t.Fatalf("%s: %d keys", dist, ks.Len())
		}
	}
}

func TestGenRejectsBadInput(t *testing.T) {
	if err := cmdGen([]string{"-dist", "zipf", "-o", tmpPath(t, "x.txt")}); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if err := cmdGen([]string{"-dist", "uniform", "-n", "10", "-domain", "5", "-o", tmpPath(t, "x.txt")}); err == nil {
		t.Fatal("infeasible n/domain accepted")
	}
	if err := cmdGen([]string{"-dist", "uniform"}); err == nil {
		t.Fatal("missing -o accepted")
	}
}

func TestAttackRMIMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	poisonFile := tmpPath(t, "poison.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "600", "-domain", "12000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAttack([]string{"-in", keysFile, "-percent", "10", "-modelsize", "100", "-o", poisonFile}); err != nil {
		t.Fatalf("rmi attack: %v", err)
	}
	poison, err := readKeys(poisonFile)
	if err != nil {
		t.Fatal(err)
	}
	if poison.Len() == 0 || poison.Len() > 60 {
		t.Fatalf("poison count %d", poison.Len())
	}
}

func TestAttackRemovalMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	removedFile := tmpPath(t, "removed.txt")
	survivorsFile := tmpPath(t, "survivors.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "400", "-domain", "8000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdAttack([]string{"-in", keysFile, "-percent", "5", "-removal", "-o", removedFile, "-o-poisoned", survivorsFile}); err != nil {
		t.Fatalf("removal attack: %v", err)
	}
	removed, err := readKeys(removedFile)
	if err != nil {
		t.Fatal(err)
	}
	survivors, err := readKeys(survivorsFile)
	if err != nil {
		t.Fatal(err)
	}
	if removed.Len()+survivors.Len() != 400 {
		t.Fatalf("keys lost: %d + %d != 400", removed.Len(), survivors.Len())
	}
	orig, _ := readKeys(keysFile)
	for _, k := range removed.Keys() {
		if !orig.Contains(k) || survivors.Contains(k) {
			t.Fatalf("removal bookkeeping broken for key %d", k)
		}
	}
}

func TestOnlineMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	poisonFile := tmpPath(t, "poison.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "400", "-domain", "16000", "-seed", "5", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOnline([]string{"-in", keysFile, "-epochs", "3", "-percent", "5",
		"-policy", "buffer:30", "-arrivals", "8", "-o", poisonFile}); err != nil {
		t.Fatalf("online: %v", err)
	}
	poison, err := readKeys(poisonFile)
	if err != nil {
		t.Fatal(err)
	}
	// 5% of 400 = 20 keys per epoch × 3 epochs.
	if poison.Len() == 0 || poison.Len() > 60 {
		t.Fatalf("poison count %d, want (0, 60]", poison.Len())
	}
	clean, _ := readKeys(keysFile)
	for _, k := range poison.Keys() {
		if clean.Contains(k) {
			t.Fatalf("poison key %d collides with a clean key", k)
		}
	}
}

func TestOnlineRMIOracleMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "500", "-domain", "20000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOnline([]string{"-in", keysFile, "-epochs", "2", "-percent", "4",
		"-policy", "manual", "-oracle", "rmi", "-models", "5"}); err != nil {
		t.Fatalf("online rmi: %v", err)
	}
}

func TestOnlineRejectsBadInput(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "100", "-domain", "4000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdOnline([]string{"-epochs", "2"}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := cmdOnline([]string{"-in", keysFile, "-policy", "hourly"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := cmdOnline([]string{"-in", keysFile, "-policy", "every:0"}); err == nil {
		t.Fatal("every:0 accepted")
	}
	if err := cmdOnline([]string{"-in", keysFile, "-policy", "buffer:x"}); err == nil {
		t.Fatal("buffer:x accepted")
	}
	if err := cmdOnline([]string{"-in", keysFile, "-oracle", "quantum"}); err == nil {
		t.Fatal("unknown oracle accepted")
	}
	// Must error cleanly, not panic building the arrival schedule.
	if err := cmdOnline([]string{"-in", keysFile, "-epochs", "-1", "-arrivals", "5"}); err == nil {
		t.Fatal("negative -epochs accepted")
	}
}

// TestOnlineWorkersFlagDeterminism: like the attack subcommand, -workers
// must never change the online scenario's poison output.
func TestOnlineWorkersFlagDeterminism(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "600", "-domain", "24000", "-seed", "13", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	run := func(workers string) string {
		t.Helper()
		out := tmpPath(t, "poison.txt")
		if err := cmdOnline([]string{"-in", keysFile, "-epochs", "3", "-percent", "3",
			"-policy", "buffer:25", "-arrivals", "5", "-workers", workers, "-o", out}); err != nil {
			t.Fatalf("online -workers %s: %v", workers, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if seq, par := run("1"), run("4"); seq != par {
		t.Fatal("online attack output depends on -workers")
	}
}

func TestServeMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	poisonFile := tmpPath(t, "poison.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "400", "-domain", "16000", "-seed", "5", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-in", keysFile, "-epochs", "3", "-percent", "5",
		"-shards", "4", "-workload", "zipf:1.1:85", "-o", poisonFile}); err != nil {
		t.Fatalf("serve: %v", err)
	}
	poison, err := readKeys(poisonFile)
	if err != nil {
		t.Fatal(err)
	}
	// 5% of 400 = 20 keys per epoch × 3 epochs.
	if poison.Len() == 0 || poison.Len() > 60 {
		t.Fatalf("poison count %d, want (0, 60]", poison.Len())
	}
	clean, _ := readKeys(keysFile)
	for _, k := range poison.Keys() {
		if clean.Contains(k) {
			t.Fatalf("poison key %d collides with a clean key", k)
		}
	}
}

func TestServeRejectsBadInput(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "100", "-domain", "4000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdServe([]string{"-epochs", "2"}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := cmdServe([]string{"-in", keysFile, "-workload", "pareto"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if err := cmdServe([]string{"-in", keysFile, "-workload", "zipf:0"}); err == nil {
		t.Fatal("zipf:0 accepted")
	}
	if err := cmdServe([]string{"-in", keysFile, "-policy", "hourly"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := cmdServe([]string{"-in", keysFile, "-shards", "80"}); err == nil {
		t.Fatal("80 shards over 100 keys accepted")
	}
}

// TestServeWorkersFlagDeterminism: -workers must never change the serve
// scenario's poison output.
func TestServeWorkersFlagDeterminism(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "500", "-domain", "20000", "-seed", "13", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	run := func(workers string) string {
		t.Helper()
		out := tmpPath(t, "poison.txt")
		if err := cmdServe([]string{"-in", keysFile, "-epochs", "2", "-percent", "3",
			"-shards", "2", "-workload", "hotspot:2:85", "-workers", workers, "-o", out}); err != nil {
			t.Fatalf("serve -workers %s: %v", workers, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if seq, par := run("1"), run("4"); seq != par {
		t.Fatal("serve attack output depends on -workers")
	}
}

func TestChurnMode(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	poisonFile := tmpPath(t, "poison.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "400", "-domain", "16000", "-seed", "5", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdChurn([]string{"-in", keysFile, "-epochs", "3", "-percent", "5",
		"-shards", "4", "-policy", "buffer:12", "-cost", "fixed:30",
		"-workload", "zipf:1.1:85", "-o", poisonFile}); err != nil {
		t.Fatalf("churn: %v", err)
	}
	poison, err := readKeys(poisonFile)
	if err != nil {
		t.Fatal(err)
	}
	if poison.Len() == 0 || poison.Len() > 60 {
		t.Fatalf("poison count %d, want (0, 60]", poison.Len())
	}
	clean, _ := readKeys(keysFile)
	for _, k := range poison.Keys() {
		if clean.Contains(k) {
			t.Fatalf("poison key %d collides with a clean key", k)
		}
	}
}

func TestChurnRejectsBadInput(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "100", "-domain", "4000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdChurn([]string{"-epochs", "2"}); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := cmdChurn([]string{"-in", keysFile, "-cost", "cubic:3"}); err == nil {
		t.Fatal("unknown cost model accepted")
	}
	if err := cmdChurn([]string{"-in", keysFile, "-cost", "fixed:-2"}); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := cmdChurn([]string{"-in", keysFile, "-policy", "hourly"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := cmdChurn([]string{"-in", keysFile, "-workload", "pareto"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestChurnWorkersFlagDeterminism: -workers must never change the churn
// scenario's poison output — the CLI leg of the workers=1 == workers=NumCPU
// byte-identity contract for ChurnAttack.
func TestChurnWorkersFlagDeterminism(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "500", "-domain", "20000", "-seed", "13", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	run := func(workers string) string {
		t.Helper()
		out := tmpPath(t, "poison.txt")
		if err := cmdChurn([]string{"-in", keysFile, "-epochs", "2", "-percent", "3",
			"-shards", "2", "-policy", "buffer:8", "-cost", "linear:10:25:100",
			"-workload", "hotspot:2:85", "-workers", workers, "-o", out}); err != nil {
			t.Fatalf("churn -workers %s: %v", workers, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if seq, par := run("1"), run("4"); seq != par {
		t.Fatal("churn attack output depends on -workers")
	}
}

func TestEvalRejectsOverlap(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "uniform", "-n", "100", "-domain", "1000", "-o", keysFile}); err != nil {
		t.Fatal(err)
	}
	// "Poison" file that overlaps the clean keys must be rejected.
	if err := cmdEval([]string{"-clean", keysFile, "-poison", keysFile}); err == nil {
		t.Fatal("overlapping poison file accepted")
	}
}

func TestMissingFlagErrors(t *testing.T) {
	if err := cmdAttack([]string{"-in", "nope.txt"}); err == nil {
		t.Fatal("attack without -o accepted")
	}
	if err := cmdEval([]string{"-clean", "nope.txt"}); err == nil {
		t.Fatal("eval without -poison accepted")
	}
	if err := cmdDefend([]string{"-in", "nope.txt", "-o", "x"}); err == nil {
		t.Fatal("defend without -clean-count accepted")
	}
	if err := cmdAttack([]string{"-in", "does-not-exist.txt", "-o", "x"}); err == nil {
		t.Fatal("attack on missing file accepted")
	}
}

func TestReadKeysRejectsGarbageFile(t *testing.T) {
	p := tmpPath(t, "garbage.txt")
	if err := os.WriteFile(p, []byte("12\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(p); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestWriteKeysRoundTrip(t *testing.T) {
	ks, err := cdfpoison.NewKeySet([]int64{5, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	p := tmpPath(t, "rt.txt")
	if err := writeKeys(p, ks); err != nil {
		t.Fatal(err)
	}
	got, err := readKeys(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ks) {
		t.Fatal("round trip mismatch")
	}
	data, _ := os.ReadFile(p)
	if !strings.HasPrefix(string(data), "1\n5\n9\n") {
		t.Fatalf("file format: %q", data)
	}
}

// TestAttackWorkersFlagDeterminism: -workers must never change the attack
// output — the poison files for sequential and parallel runs are identical
// bytes, for both the regression and the RMI attack modes.
func TestAttackWorkersFlagDeterminism(t *testing.T) {
	keysFile := tmpPath(t, "keys.txt")
	if err := cmdGen([]string{"-dist", "lognormal", "-n", "800", "-domain", "200000", "-seed", "11", "-o", keysFile}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	run := func(extra ...string) string {
		t.Helper()
		out := tmpPath(t, "poison.txt")
		args := append([]string{"-in", keysFile, "-percent", "10", "-o", out}, extra...)
		if err := cmdAttack(args); err != nil {
			t.Fatalf("attack %v: %v", extra, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if seq, par := run("-workers", "1"), run("-workers", "4"); seq != par {
		t.Fatal("regression attack output depends on -workers")
	}
	if seq, par := run("-workers", "1", "-modelsize", "80"), run("-workers", "4", "-modelsize", "80"); seq != par {
		t.Fatal("RMI attack output depends on -workers")
	}
}
